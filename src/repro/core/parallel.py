"""Parallel branch-and-bound engine with shared incumbent bounds.

The NP-hard KTG search of :mod:`repro.core.branch_and_bound` explores a
tree whose first level is the ordered root frontier: choosing candidate
``v_i`` at the root spawns one independent subtree over the candidates
after ``v_i``.  This module splits that frontier into subproblems,
solves them in a worker fleet (process pool, thread pool, or inline),
and merges the per-subtree results back into one :class:`TopNPool`
**deterministically**: an unbudgeted ``solve(jobs=N)`` returns groups
bit-identical to the serial solver for every ordering strategy.

Why the merge is exact
----------------------
Each worker runs the ordinary serial search over its subtree, but its
result pool is a :class:`_RecordingFloorPool`: a local top-N pool whose
pruning threshold is additionally floored by a broadcast bound, and
which records every locally-admitted group in discovery order.  Three
invariants make the final replay bit-identical to serial:

1. *The floor is always a lower bound of the serial threshold.*  The
   parent only broadcasts the threshold of the merged pool over the
   maximal **contiguous prefix** of completed subproblems.  Serial
   thresholds only grow, so the threshold after subtrees ``0..j`` is at
   most the serial threshold at any point inside a later subtree
   ``i > j`` — and a running subproblem is never inside the prefix.
2. *The local threshold is a lower bound too.*  If the local pool's
   N-th best exceeded the serial threshold, all N local groups would be
   serial-admitted groups still resident in the serial pool — but then
   the serial pool (same capacity) would have a higher threshold,
   a contradiction.
3. *Extra exploration is harmless.*  A worker therefore prunes at most
   as much as serial; every group the serial search offers is recorded,
   and every *extra* recorded group comes from a branch serial pruned,
   so its coverage is at or below the serial threshold at that point of
   the replay and the strict-admission pool rejects it.

Replaying each subproblem's recorded offers in root order through a
fresh pool thus reproduces the serial pool trajectory exactly.

Determinism across ``jobs``
---------------------------
Group results are jobs-invariant always.  ``SearchStats`` aggregates
(prune/node counters) are additionally jobs- and schedule-invariant
when ``bound_broadcast=False`` (every subproblem then runs with a
constant floor of 0); with broadcasts enabled the *work done* depends
on completion timing, so only the returned groups are guaranteed
identical.  Budgets apply per subproblem (see :meth:`solve`), keeping
budgeted runs jobs-invariant in the broadcast-free mode as well.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.core.branch_and_bound import (
    BranchAndBoundSolver,
    KTGResult,
    SearchStats,
    _BudgetExhausted,
)
from repro.core.coverage import CoverageContext
from repro.core.csr import CsrSnapshot, validate_graph_layout
from repro.core.errors import IndexBuildError
from repro.core.graph import AttributedGraph
from repro.core.query import KTGQuery
from repro.core.results import TopNPool
from repro.core.strategies import (
    OrderingStrategy,
    QKCOrdering,
    VKCDegreeOrdering,
    VKCOrdering,
    strategy_by_name,
)
from repro.index.base import DistanceOracle, GraphLike
from repro.obs.instruments import NULL_REGISTRY, InstrumentRegistry

__all__ = [
    "ParallelBranchAndBoundSolver",
    "ParallelKTGResult",
    "aggregate_subproblem_stats",
    "make_parallel_solver",
    "root_frontier",
]

#: How many threshold/admission checks go through a cached floor before
#: the shared broadcast cell is re-read (a locked read for processes).
FLOOR_POLL_INTERVAL = 64

#: Executors accepted by :class:`ParallelBranchAndBoundSolver`.
EXECUTORS = ("inline", "thread", "process")


# ----------------------------------------------------------------------
# Shared incumbent floor
# ----------------------------------------------------------------------
class _FloorBox:
    """In-process broadcast cell (inline/thread executors).

    A bare attribute read/write of a float is atomic under the GIL,
    which is all the protocol needs: readers tolerate staleness, and
    the single writer only ever increases the value.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def read(self) -> float:
        return self.value

    def write(self, value: float) -> None:
        self.value = value


class _SharedFloor:
    """Cross-process broadcast cell backed by ``multiprocessing.Value``."""

    __slots__ = ("_cell",)

    def __init__(self, cell: Any) -> None:
        self._cell = cell

    def read(self) -> float:
        return float(self._cell.value)

    def write(self, value: float) -> None:
        self._cell.value = value


class _RecordingFloorPool:
    """Worker-side result pool: local top-N, floored threshold, offer log.

    Duck-types the three :class:`TopNPool` methods the solver uses
    (``threshold``, ``would_admit``, ``offer``).  Offers below the floor
    are rejected outright and never recorded — the merge-time threshold
    is provably at least the floor, so they could never be admitted.
    """

    __slots__ = ("_pool", "_read_floor", "_floor", "_polls", "offers")

    def __init__(self, capacity: int, read_floor: Callable[[], float]) -> None:
        self._pool = TopNPool(capacity)
        self._read_floor = read_floor
        self._floor = read_floor()
        self._polls = 0
        #: Locally admitted groups, in discovery order.
        self.offers: list[tuple[tuple[int, ...], float]] = []

    def _current_floor(self) -> float:
        self._polls += 1
        if self._polls >= FLOOR_POLL_INTERVAL:
            self._polls = 0
            fresh = self._read_floor()
            if fresh > self._floor:
                self._floor = fresh
        return self._floor

    @property
    def threshold(self) -> float:
        floor = self._current_floor()
        local = self._pool.threshold
        return local if local > floor else floor

    def would_admit(self, coverage: float) -> bool:
        if coverage <= self._current_floor():
            return False
        return self._pool.would_admit(coverage)

    def offer(self, members: Sequence[int], coverage: float) -> bool:
        if coverage <= self._current_floor():
            return False
        admitted = self._pool.offer(members, coverage)
        if admitted:
            self.offers.append((tuple(sorted(members)), coverage))
        return admitted


# ----------------------------------------------------------------------
# Subproblems
# ----------------------------------------------------------------------
@dataclass
class _SubproblemOutcome:
    """What one root branch sends back to the merger."""

    position: int
    offers: list[tuple[tuple[int, ...], float]]
    stats: SearchStats


def root_frontier(initial: Sequence[int], group_size: int) -> range:
    """Root-branch positions the serial search would actually expand.

    The serial root loop breaks as soon as fewer than ``p - 1``
    candidates remain after the chosen one, so positions past
    ``len(initial) - p`` never spawn a subtree.
    """
    return range(0, max(0, len(initial) - group_size + 1))


def _solve_subtree(
    solver: BranchAndBoundSolver,
    query: KTGQuery,
    context: CoverageContext,
    initial: Sequence[int],
    position: int,
    pool: _RecordingFloorPool,
    deadline: Optional[float],
) -> SearchStats:
    """Run the serial search over the subtree rooted at one root branch.

    Reproduces exactly what the serial root loop does for this position:
    k-line-filter the tail against the chosen vertex, re-order it when
    the strategy re-sorts, then recurse.  Returns the subtree's stats;
    a tripped budget is recorded, not raised.
    """
    stats = SearchStats()
    vertex = initial[position]
    rest = list(initial[position + 1 :])
    masks = context.masks
    new_mask = masks[vertex]
    rest_mask = None
    solver._deadline = deadline
    solver._hooks = None
    try:
        if solver.kline_filtering:
            before = len(rest)
            kernel = solver.kernel
            if kernel is not None:
                rest, rest_mask = kernel.filter_list(
                    rest, kernel.encode(rest), vertex, query.tenuity
                )
            else:
                rest = solver.oracle.filter_candidates(rest, vertex, query.tenuity)
            stats.kline_removed += before - len(rest)
        if solver.strategy.resorts and new_mask != 0:
            rest = solver.strategy.reorder(rest, new_mask, context)
        solver._search(
            members=[vertex],
            covered_mask=new_mask,
            remaining=rest,
            query=query,
            context=context,
            pool=pool,
            stats=stats,
            remaining_mask=rest_mask,
        )
    except _BudgetExhausted:
        stats.budget_exhausted = True
    return stats


# ----------------------------------------------------------------------
# Process-pool plumbing: workers receive graph/oracle/strategy/options
# once (at pool start) plus the shared floor cell; per-task traffic is
# (chunk positions, query, initial order) out, outcome list back.
#
# Two initializers exist.  The classic one ships the pickled graph and
# oracle.  The csr one ships only a shared-memory segment *name*: the
# worker attaches to the parent's CSR snapshot (zero-copy), wraps it in
# a CsrGraphView, and builds a CSR-layout BFS oracle over it.  Every
# oracle in this library is exact, so the substitution changes neither
# groups nor SearchStats (only oracle-internal probe/memo counters,
# which stay worker-local either way).
# ----------------------------------------------------------------------
_WORKER: Optional[dict] = None


def _parallel_worker_init(
    graph: AttributedGraph,
    oracle: DistanceOracle,
    strategy: OrderingStrategy,
    options: dict,
    floor_cell: Any,
) -> None:
    global _WORKER
    _WORKER = {
        "solver": BranchAndBoundSolver(graph, oracle=oracle, strategy=strategy, **options),
        "floor": _SharedFloor(floor_cell),
        "context_key": None,
        "context": None,
    }


def _strategy_spec(strategy: OrderingStrategy) -> Optional[tuple[str, dict]]:
    """Compact picklable recipe for the standard strategies.

    Shipping ``("vkc-deg", {...})`` instead of the object avoids
    pickling its n-entry degree table — the worker rebuilds it from the
    attached view (CSR degrees equal adjacency degrees).  Non-standard
    strategy objects return ``None`` and are pickled as-is.
    """
    if type(strategy) is QKCOrdering:
        return ("qkc", {})
    if type(strategy) is VKCOrdering:
        return ("vkc", {})
    if type(strategy) is VKCDegreeOrdering:
        return ("vkc-deg", {"degree_order": strategy.degree_order})
    return None


def _parallel_worker_init_csr(
    segment_name: str,
    strategy: Optional[OrderingStrategy],
    strategy_spec: Optional[tuple[str, dict]],
    options: dict,
    floor_cell: Any,
) -> None:
    global _WORKER
    from repro.index.bfs import BFSOracle

    snapshot = CsrSnapshot.attach(segment_name)
    try:
        view = snapshot.view()
        if strategy_spec is not None:
            strategy = strategy_by_name(strategy_spec[0], view, **strategy_spec[1])
        oracle = BFSOracle(view, graph_layout="csr")
        _WORKER = {
            "solver": BranchAndBoundSolver(
                view, oracle=oracle, strategy=strategy, graph_layout="csr", **options
            ),
            "floor": _SharedFloor(floor_cell),
            "context_key": None,
            "context": None,
            "snapshot": snapshot,
        }
    except BaseException:
        # A worker dying between attach and solver construction must
        # still close its handle: the owner's later unlink only removes
        # the name, so a leaked mapping keeps /dev/shm populated on
        # crashy fleets (the CI leak check catches exactly this).
        snapshot.close()
        raise


def _parallel_worker_run(
    chunk: Sequence[int],
    query: KTGQuery,
    initial: Sequence[int],
    top_n: int,
    deadline: Optional[float],
    node_budget: Optional[int],
) -> tuple[int, list[_SubproblemOutcome]]:
    assert _WORKER is not None, "parallel worker initializer did not run"
    solver: BranchAndBoundSolver = _WORKER["solver"]
    solver.node_budget = node_budget
    floor: _SharedFloor = _WORKER["floor"]
    if _WORKER["context_key"] != query.keywords:
        _WORKER["context"] = CoverageContext(solver.graph, query.keywords)
        _WORKER["context_key"] = query.keywords
    context: CoverageContext = _WORKER["context"]
    outcomes = []
    for position in chunk:
        pool = _RecordingFloorPool(top_n, floor.read)
        stats = _solve_subtree(solver, query, context, initial, position, pool, deadline)
        outcomes.append(_SubproblemOutcome(position, pool.offers, stats))
    return os.getpid(), outcomes


# ----------------------------------------------------------------------
# Result type
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParallelKTGResult(KTGResult):
    """A :class:`KTGResult` plus the parallel engine's provenance.

    ``groups`` (and for unbudgeted runs every admission decision behind
    them) are identical to what the serial solver returns; the extra
    fields describe how the search was scheduled.
    """

    jobs: int = 1
    executor: str = "inline"
    subproblems: int = 0
    worker_stats: tuple[SearchStats, ...] = field(compare=False, default_factory=tuple)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class ParallelBranchAndBoundSolver:
    """Multi-worker exact top-N KTG solver (frontier decomposition).

    Parameters mirror :class:`BranchAndBoundSolver` plus:

    jobs:
        Worker count.  ``jobs=1`` degrades to in-process execution of
        the same subproblem schedule, so results *and* stats match
        higher job counts (the serial :class:`BranchAndBoundSolver`
        remains the reference for classic global-budget semantics).
    executor:
        ``"process"`` (default; real CPU parallelism), ``"thread"``
        (GIL-bound, cheap to spin up — scheduling tests), or
        ``"inline"`` (no pool at all; deterministic broadcasts).
    bound_broadcast:
        Share the merged contiguous-prefix incumbent threshold with
        running workers so Theorem-2 pruning tightens fleet-wide.
        Group results stay bit-identical either way; disable to make
        ``SearchStats`` aggregates schedule-invariant too.
    chunk_size:
        Root branches per worker task; defaults to
        ``ceil(frontier / (jobs * 4))`` so late (cheap) subtrees
        rebalance the skewed early ones.
    distance_engine / kernel:
        Forwarded to every worker solver (see
        :class:`BranchAndBoundSolver`).  Inline/thread workers share one
        ball cache read-only (ball values are immutable ints); process
        workers each lazily build their own over the shipped oracle.
    kernel_backend:
        Vectorization backend (``"auto"``/``"numpy"``/``"python"``,
        see :class:`BranchAndBoundSolver`) forwarded to the template,
        every clone and every process worker's options, so a fleet
        never mixes backends.
    graph_layout:
        ``"adjacency"`` (default) keeps the classic process fan-out:
        the graph and oracle are pickled into every worker at pool
        start.  ``"csr"`` makes fan-out zero-copy — the engine copies
        the graph's CSR snapshot into one shared-memory segment and
        workers attach by *name*, building a CSR-layout BFS oracle
        over the mapped arrays (exact, so groups and ``SearchStats``
        match any parent oracle bit for bit; an explicitly passed
        *oracle* still serves the inline/thread paths and the
        root-level candidate preparation).  The engine owns the
        segment: it is released deterministically on :meth:`close`
        and whenever a ``graph.version`` bump forces a pool rebuild.
    instruments:
        Registry receiving ``parallel.tasks``, ``parallel.subproblems``,
        ``parallel.bound_broadcasts`` and ``parallel.steals`` counters,
        plus the ``csr.*`` family when ``graph_layout="csr"``.

    Budgets: ``node_budget`` / ``time_budget`` apply **per subproblem**
    (each root branch gets the full allowance).  This keeps budgeted
    runs deterministic across ``jobs``; callers wanting one global cap
    should use the serial solver.

    A single engine reuses its worker pool across ``solve`` calls.
    Concurrent ``solve`` calls are safe but serialized: the pool and
    the broadcast floor cell are per-engine, so overlapping pooled
    solves would reset each other's pruning floor (and race the lazy
    pool build).  A fleet owns the hardware for one query at a time —
    the same contract :class:`repro.service.QueryService` documents for
    ``jobs > 1`` batches.  Use :meth:`close` or a ``with`` block.
    """

    def __init__(
        self,
        graph: GraphLike,
        oracle: Optional[DistanceOracle] = None,
        strategy: Optional[OrderingStrategy] = None,
        *,
        jobs: int = 2,
        executor: str = "process",
        keyword_pruning: bool = True,
        kline_filtering: bool = True,
        use_union_bound: bool = False,
        node_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
        bound_broadcast: bool = True,
        chunk_size: Optional[int] = None,
        instruments: InstrumentRegistry = NULL_REGISTRY,
        distance_engine: str = "oracle",
        kernel=None,
        graph_layout: str = "adjacency",
        kernel_backend: str = "auto",
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        # One worker cannot overlap with itself; skip the pool entirely.
        self.executor_kind = "inline" if jobs == 1 else executor
        self.bound_broadcast = bound_broadcast
        self.chunk_size = chunk_size
        self.instruments = instruments
        self.graph_layout = validate_graph_layout(graph_layout)
        self._template = BranchAndBoundSolver(
            graph,
            oracle=oracle,
            strategy=strategy,
            keyword_pruning=keyword_pruning,
            kline_filtering=kline_filtering,
            use_union_bound=use_union_bound,
            node_budget=node_budget,
            time_budget=time_budget,
            distance_engine=distance_engine,
            kernel=kernel,
            graph_layout=graph_layout,
            kernel_backend=kernel_backend,
        )
        self._pool: Optional[Executor] = None
        # Serializes pooled solves: the floor cell and pool are shared
        # engine state, and racing solves would reset each other's
        # broadcast floor mid-search (an over-high floor prunes valid
        # groups) or fork duplicate worker pools.
        self._fleet_lock = threading.Lock()
        self._floor_cell: Any = None
        # Shared-memory CSR segment owned by this engine (csr + process
        # fan-out only); released on close() and on version-bump pool
        # rebuilds.  _pool_version tracks the graph version the current
        # pool's workers were initialised against.
        self._shared_snapshot: Optional[CsrSnapshot] = None
        self._pool_version: Optional[int] = None
        self._tasks_counter = instruments.counter("parallel.tasks")
        self._subproblem_counter = instruments.counter("parallel.subproblems")
        self._broadcast_counter = instruments.counter("parallel.bound_broadcasts")
        self._steal_counter = instruments.counter("parallel.steals")

    # ------------------------------------------------------------------
    @property
    def graph(self) -> GraphLike:
        return self._template.graph

    @property
    def oracle(self) -> DistanceOracle:
        return self._template.oracle

    @property
    def strategy(self) -> OrderingStrategy:
        return self._template.strategy

    @property
    def algorithm_name(self) -> str:
        return self._template.algorithm_name

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool and release shared memory (idempotent)."""
        self._teardown_pool()

    def __enter__(self) -> "ParallelBranchAndBoundSolver":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def solve(
        self,
        query: KTGQuery,
        candidates: Optional[Sequence[int]] = None,
        *,
        node_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> ParallelKTGResult:
        """Answer *query* across the worker fleet.

        Group results are bit-identical to
        ``BranchAndBoundSolver.solve`` for unbudgeted runs; see the
        module docstring for the proof sketch and the class docstring
        for budget semantics.  *node_budget* / *time_budget* override
        the engine defaults for this call only (the admission-control
        hook :class:`repro.service.QueryService` uses).
        """
        template = self._template
        if template.oracle.is_stale():
            # Same contract as the serial solver: force an explicit rebuild.
            raise IndexBuildError(
                "the distance oracle was built on an older version of the "
                "graph; call oracle.rebuild() before solving"
            )
        nb = node_budget if node_budget is not None else template.node_budget
        tb = time_budget if time_budget is not None else template.time_budget
        started = time.perf_counter()
        root_stats = SearchStats()
        context = query.cached_context(template.graph)
        template._last_context = context
        initial = template._initial_candidates(query, context, candidates, root_stats)
        initial = template.strategy.initial_order(initial, context)

        frontier = root_frontier(initial, query.group_size)
        if query.group_size == 1 or len(frontier) == 0:
            # Degenerate trees (root is itself a leaf, or exhausted):
            # delegate to the serial engine — identical for every jobs.
            return self._wrap_serial(query, candidates, nb, tb)

        deadline = started + tb if tb is not None else None
        chunks = self._chunk(frontier)
        self._tasks_counter.inc(len(chunks))
        self._subproblem_counter.inc(len(frontier))

        if self.executor_kind == "inline":
            outcomes, merged, accepted, broadcasts = self._run_inline(
                chunks, query, initial, context, deadline, nb
            )
            steals = 0
        else:
            with self._fleet_lock:
                outcomes, merged, accepted, broadcasts, steals = self._run_pool(
                    chunks, query, initial, deadline, nb
                )
        self._broadcast_counter.inc(broadcasts)
        self._steal_counter.inc(steals)

        stats = self._aggregate(root_stats, outcomes, accepted)
        stats.elapsed_seconds = time.perf_counter() - started
        return ParallelKTGResult(
            query=query,
            algorithm=template.algorithm_name,
            groups=tuple(merged.best()),
            stats=stats,
            jobs=self.jobs,
            executor=self.executor_kind,
            subproblems=len(frontier),
            worker_stats=tuple(outcome.stats for outcome in outcomes),
        )

    # ------------------------------------------------------------------
    def _wrap_serial(
        self,
        query: KTGQuery,
        candidates: Optional[Sequence[int]],
        node_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> ParallelKTGResult:
        serial = self._clone_template()
        serial.node_budget = node_budget
        serial.time_budget = time_budget
        serial = serial.solve(query, candidates)
        return ParallelKTGResult(
            query=serial.query,
            algorithm=serial.algorithm,
            groups=serial.groups,
            stats=serial.stats,
            jobs=self.jobs,
            executor=self.executor_kind,
            subproblems=0,
            worker_stats=(serial.stats,),
        )

    def _chunk(self, frontier: range) -> list[list[int]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(frontier) // (self.jobs * 4)))
        positions = list(frontier)
        return [positions[i : i + size] for i in range(0, len(positions), size)]

    # -- inline ---------------------------------------------------------
    def _run_inline(
        self,
        chunks: list[list[int]],
        query: KTGQuery,
        initial: Sequence[int],
        context: CoverageContext,
        deadline: Optional[float],
        node_budget: Optional[int],
    ) -> tuple[list[_SubproblemOutcome], TopNPool, int, int]:
        floor = _FloorBox()
        merged = TopNPool(query.top_n)
        solver = self._clone_template()
        solver.node_budget = node_budget
        outcomes: list[_SubproblemOutcome] = []
        accepted = 0
        broadcasts = 0
        for chunk in chunks:
            for position in chunk:
                pool = _RecordingFloorPool(query.top_n, floor.read)
                stats = _solve_subtree(
                    solver, query, context, initial, position, pool, deadline
                )
                outcomes.append(_SubproblemOutcome(position, pool.offers, stats))
            # Inline completion order == root order, so the contiguous
            # prefix is simply everything so far: the broadcast floor
            # tracks the serial threshold as tightly as possible.
            accepted += _replay(merged, outcomes[len(outcomes) - len(chunk) :])
            if self.bound_broadcast and merged.threshold > floor.read():
                floor.write(merged.threshold)
                broadcasts += 1
        return outcomes, merged, accepted, broadcasts

    # -- thread / process ----------------------------------------------
    def _run_pool(
        self,
        chunks: list[list[int]],
        query: KTGQuery,
        initial: Sequence[int],
        deadline: Optional[float],
        node_budget: Optional[int],
    ) -> tuple[list[_SubproblemOutcome], TopNPool, int, int, int]:
        pool = self._ensure_pool()
        if self.executor_kind == "thread":
            floor = self._floor_cell
            floor.write(0.0)
            context = query.cached_context(self._template.graph)
            solvers = [self._clone_template() for _ in range(len(chunks))]
            for solver in solvers:
                solver.node_budget = node_budget

            def run_chunk(index: int) -> tuple[Any, list[_SubproblemOutcome]]:
                solver = solvers[index]
                results = []
                for position in chunks[index]:
                    local = _RecordingFloorPool(query.top_n, floor.read)
                    stats = _solve_subtree(
                        solver, query, context, initial, position, local, deadline
                    )
                    results.append(_SubproblemOutcome(position, local.offers, stats))
                return threading.get_ident(), results

            futures = {pool.submit(run_chunk, i): i for i in range(len(chunks))}
        else:
            floor = _SharedFloor(self._floor_cell)
            floor.write(0.0)
            futures = {
                pool.submit(
                    _parallel_worker_run,
                    chunk,
                    query,
                    list(initial),
                    query.top_n,
                    deadline,
                    node_budget,
                ): i
                for i, chunk in enumerate(chunks)
            }

        merged = TopNPool(query.top_n)
        by_chunk: dict[int, list[_SubproblemOutcome]] = {}
        worker_of_chunk: dict[int, Any] = {}
        next_chunk = 0
        accepted = 0
        broadcasts = 0
        for future in as_completed(futures):
            chunk_index = futures[future]
            worker_tag, results = future.result()
            by_chunk[chunk_index] = results
            worker_of_chunk[chunk_index] = worker_tag
            # Advance the contiguous completed prefix and broadcast its
            # merged threshold — the only bound provably at or below the
            # serial threshold for every still-running subproblem.
            while next_chunk in by_chunk:
                accepted += _replay(merged, by_chunk[next_chunk])
                next_chunk += 1
            if self.bound_broadcast and merged.threshold > floor.read():
                floor.write(merged.threshold)
                broadcasts += 1
        steals = self._count_steals(worker_of_chunk)
        outcomes = [
            outcome for index in sorted(by_chunk) for outcome in by_chunk[index]
        ]
        return outcomes, merged, accepted, broadcasts, steals

    def _count_steals(self, worker_of_chunk: dict[int, Any]) -> int:
        """Chunks not executed by their static round-robin home worker.

        The pool schedules dynamically, so this measures how much load
        rebalancing happened relative to a static ``chunk % jobs``
        partition (0 on a perfectly uniform frontier).
        """
        slots: dict[Any, int] = {}
        steals = 0
        for chunk_index in sorted(worker_of_chunk):
            tag = worker_of_chunk[chunk_index]
            slot = slots.setdefault(tag, len(slots))
            if slot != chunk_index % self.jobs:
                steals += 1
        return steals

    # ------------------------------------------------------------------
    def _clone_template(self) -> BranchAndBoundSolver:
        """A fresh solver sharing the graph/oracle/strategy but owning
        its own mutable ``_deadline`` slot (one per concurrent chunk)."""
        template = self._template
        return BranchAndBoundSolver(
            template.graph,
            oracle=template.oracle,
            strategy=template.strategy,
            keyword_pruning=template.keyword_pruning,
            kline_filtering=template.kline_filtering,
            use_union_bound=template.use_union_bound,
            node_budget=template.node_budget,
            time_budget=template.time_budget,
            distance_engine=template.distance_engine,
            # Clones share the template's ball cache: values are
            # immutable ints and the LRU bookkeeping is locked, so
            # thread/inline fleets read each other's balls for free.
            kernel=template.kernel,
            graph_layout=template.graph_layout,
            kernel_backend=template.kernel_backend,
        )

    def _teardown_pool(self) -> None:
        """Shut down the pool, then unlink the shared segment (idempotent).

        Order matters: workers may still be attached to the segment
        while draining, so the pool is joined *before* the unlink.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._pool_version = None
        if self._shared_snapshot is not None:
            self._shared_snapshot.release(instruments=self.instruments)
            self._shared_snapshot = None

    def _worker_options(self) -> dict:
        template = self._template
        return {
            "keyword_pruning": template.keyword_pruning,
            "kline_filtering": template.kline_filtering,
            "use_union_bound": template.use_union_bound,
            # Each process worker lazily builds its own ball cache over
            # its own oracle (the parent's kernel holds a lock and is
            # not shipped).
            "distance_engine": template.distance_engine,
            "kernel_backend": template.kernel_backend,
        }

    def _ensure_pool(self) -> Executor:
        # A graph.version bump since pool start means process workers
        # hold a stale graph (and, under csr, a stale shared segment):
        # tear everything down and respawn against the current version.
        version = getattr(self.graph, "version", None)
        if self._pool is not None and self._pool_version != version:
            self._teardown_pool()
        if self._pool is not None:
            return self._pool
        if self.executor_kind == "thread":
            self._floor_cell = _FloorBox()
            self._pool = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="ktg-parallel"
            )
        else:
            import multiprocessing

            template = self._template
            self._floor_cell = multiprocessing.Value("d", 0.0)
            if self.graph_layout == "csr":
                # Zero-copy fan-out: publish one shared-memory copy of
                # the CSR snapshot and hand workers its *name*.  The
                # engine owns the segment (released in _teardown_pool).
                base = getattr(template.graph, "snapshot", None)
                if base is None:
                    base = template.graph.csr_snapshot()  # type: ignore[union-attr]
                self._shared_snapshot = base.share(instruments=self.instruments)
                spec = _strategy_spec(template.strategy)
                try:
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.jobs,
                        initializer=_parallel_worker_init_csr,
                        initargs=(
                            self._shared_snapshot.name,
                            None if spec is not None else template.strategy,
                            spec,
                            self._worker_options(),
                            self._floor_cell,
                        ),
                    )
                except BaseException:
                    # Pool construction failing after share() would
                    # otherwise strand the engine-owned segment until
                    # close(); unlink it eagerly so a crashy start
                    # leaves /dev/shm clean.
                    self._shared_snapshot.release(instruments=self.instruments)
                    self._shared_snapshot = None
                    raise
            else:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_parallel_worker_init,
                    initargs=(
                        template.graph,
                        template.oracle,
                        template.strategy,
                        self._worker_options(),
                        self._floor_cell,
                    ),
                )
        self._pool_version = version
        return self._pool

    # ------------------------------------------------------------------
    def _aggregate(
        self,
        root_stats: SearchStats,
        outcomes: list[_SubproblemOutcome],
        accepted: int,
    ) -> SearchStats:
        return aggregate_subproblem_stats(root_stats, outcomes, accepted)

    def __repr__(self) -> str:
        return (
            f"ParallelBranchAndBoundSolver({self.algorithm_name}, "
            f"jobs={self.jobs}x{self.executor_kind}, "
            f"broadcast={self.bound_broadcast})"
        )


def aggregate_subproblem_stats(
    root_stats: SearchStats,
    outcomes: Sequence[_SubproblemOutcome],
    accepted: int,
) -> SearchStats:
    """Fold per-subproblem stats plus the root node's own accounting.

    *outcomes* must be in root-position order: node renumbering assigns
    each subtree the id range the serial search would have used, so
    ``first_feasible_node`` matches serial bit for bit.  Shared by the
    jobs-based engine and the sharded scatter-gather executor
    (:mod:`repro.shard`), whose merged ledgers must agree.
    """
    total = SearchStats()
    # The serial root expands exactly one interior node (degenerate
    # roots took the serial fallback path before reaching here).
    total.nodes_expanded = 1
    total.nodes_interior = 1
    total.kline_removed = root_stats.kline_removed
    total.offers_accepted = accepted
    offset = 1  # serial node numbering: root is node 1
    for outcome in outcomes:
        stats = outcome.stats
        if total.first_feasible_node is None and stats.first_feasible_node is not None:
            total.first_feasible_node = offset + stats.first_feasible_node
        offset += stats.nodes_expanded
        total.nodes_expanded += stats.nodes_expanded
        total.feasible_groups += stats.feasible_groups
        total.keyword_prunes += stats.keyword_prunes
        total.kline_removed += stats.kline_removed
        total.nodes_interior += stats.nodes_interior
        total.nodes_completed += stats.nodes_completed
        total.nodes_exhausted += stats.nodes_exhausted
        total.node_prunes += stats.node_prunes
        total.leaf_prunes += stats.leaf_prunes
        total.union_prunes += stats.union_prunes
        total.budget_exhausted = total.budget_exhausted or stats.budget_exhausted
    return total


def _replay(pool: TopNPool, outcomes: Sequence[_SubproblemOutcome]) -> int:
    """Re-offer recorded groups in discovery order; return admissions."""
    accepted = 0
    for outcome in outcomes:
        for members, coverage in outcome.offers:
            if pool.offer(members, coverage):
                accepted += 1
    return accepted


def make_parallel_solver(
    graph: GraphLike,
    strategy_name: str = "vkc-deg",
    oracle: Optional[DistanceOracle] = None,
    **engine_options: Any,
) -> ParallelBranchAndBoundSolver:
    """Convenience factory mirroring :func:`repro.core.branch_and_bound.make_solver`."""
    from repro.core.strategies import strategy_by_name

    strategy = strategy_by_name(strategy_name, graph)
    return ParallelBranchAndBoundSolver(
        graph, oracle=oracle, strategy=strategy, **engine_options
    )
