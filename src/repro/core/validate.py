"""Independent validation of KTG/DKTG results.

An exact solver for an NP-hard problem is only trustworthy if its
output can be audited without trusting the solver: this module checks a
result against the *definitions* (Section III) using nothing but plain
BFS and set arithmetic.  The test suite uses it to cross-examine every
solver; downstream deployments can run it on sampled production queries
as a canary.

:func:`validate_ktg_result` checks Definition 7's three conditions per
group plus coverage bookkeeping; :func:`validate_dktg_result`
additionally recomputes the diversity and combined score.  Violations
raise :class:`ResultValidationError` with a precise description; the
functions return quietly on success.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.branch_and_bound import KTGResult
from repro.core.coverage import CoverageContext
from repro.core.dktg import DKTGResult, dktg_score, result_diversity
from repro.core.errors import ReproError
from repro.core.graph import AttributedGraph
from repro.core.query import DKTGQuery, KTGQuery
from repro.core.results import Group

__all__ = ["ResultValidationError", "validate_ktg_result", "validate_dktg_result"]

_TOLERANCE = 1e-9


class ResultValidationError(ReproError, AssertionError):
    """A result violates the KTG/DKTG definitions."""


def _check_group(
    graph: AttributedGraph,
    query: KTGQuery,
    context: CoverageContext,
    group: Group,
    rank: int,
) -> None:
    members = group.members
    if len(members) != query.group_size:
        raise ResultValidationError(
            f"group {rank} has {len(members)} members, query requires "
            f"p={query.group_size}"
        )
    if len(set(members)) != len(members):
        raise ResultValidationError(f"group {rank} repeats a member: {members}")

    for member in members:
        if not 0 <= member < graph.num_vertices:
            raise ResultValidationError(
                f"group {rank} references unknown vertex {member}"
            )
        if context.masks[member] == 0:
            raise ResultValidationError(
                f"group {rank} member u{member} covers no query keyword "
                "(Definition 7 requires QKC(v) > 0)"
            )

    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            distance = graph.hop_distance(u, v)
            if distance is not None and distance <= query.tenuity:
                raise ResultValidationError(
                    f"group {rank} pair (u{u}, u{v}) is a {query.tenuity}-line: "
                    f"distance {distance} <= k={query.tenuity}"
                )

    expected_coverage = context.group_coverage(members)
    if abs(group.coverage - expected_coverage) > _TOLERANCE:
        raise ResultValidationError(
            f"group {rank} reports coverage {group.coverage}, recomputed "
            f"{expected_coverage}"
        )

    for anchor in query.excluded_anchors:
        for member in members:
            if member == anchor:
                raise ResultValidationError(
                    f"group {rank} contains excluded anchor u{anchor}"
                )
            distance = graph.hop_distance(member, anchor)
            if distance is not None and distance <= query.tenuity:
                raise ResultValidationError(
                    f"group {rank} member u{member} is within k of anchor "
                    f"u{anchor} (distance {distance})"
                )


def validate_ktg_result(graph: AttributedGraph, result: KTGResult) -> None:
    """Audit a KTG result against Definition 7.

    Checks every group's size, member qualification, pairwise tenuity,
    anchor exclusion and reported coverage, plus the descending coverage
    ordering and the top-N cap.

    >>> from repro.datasets import figure1_example, figure1_query
    >>> from repro.core.branch_and_bound import BranchAndBoundSolver
    >>> graph = figure1_example()
    >>> validate_ktg_result(graph, BranchAndBoundSolver(graph).solve(figure1_query()))
    """
    query = result.query
    context = CoverageContext(graph, query.keywords)

    if len(result.groups) > query.top_n:
        raise ResultValidationError(
            f"result holds {len(result.groups)} groups, query asked for "
            f"N={query.top_n}"
        )
    coverages = [group.coverage for group in result.groups]
    if coverages != sorted(coverages, reverse=True):
        raise ResultValidationError(
            f"groups are not sorted by coverage descending: {coverages}"
        )
    member_sets = {group.members for group in result.groups}
    if len(member_sets) != len(result.groups):
        raise ResultValidationError("result contains duplicate groups")

    for rank, group in enumerate(result.groups, 1):
        _check_group(graph, query, context, group, rank)


def validate_dktg_result(graph: AttributedGraph, result: DKTGResult) -> None:
    """Audit a DKTG result: per-group Definition 7 plus Equations 2-4.

    Recomputes the diversity of the returned set and the combined score
    and compares them against the reported values.
    """
    query = result.query
    if not isinstance(query, DKTGQuery):
        raise ResultValidationError("DKTG result does not carry a DKTG query")
    context = CoverageContext(graph, query.keywords)

    if len(result.groups) > query.top_n:
        raise ResultValidationError(
            f"result holds {len(result.groups)} groups, query asked for "
            f"N={query.top_n}"
        )
    for rank, group in enumerate(result.groups, 1):
        _check_group(graph, query, context, group, rank)

    member_sets: Sequence[Sequence[int]] = [g.members for g in result.groups]
    expected_diversity = result_diversity(member_sets)
    if abs(result.diversity - expected_diversity) > _TOLERANCE:
        raise ResultValidationError(
            f"reported diversity {result.diversity}, recomputed "
            f"{expected_diversity}"
        )
    expected_score = dktg_score(
        [g.coverage for g in result.groups], member_sets, query.gamma
    )
    if abs(result.score - expected_score) > _TOLERANCE:
        raise ResultValidationError(
            f"reported score {result.score}, recomputed {expected_score}"
        )
