"""Inverted keyword index: fast coverage contexts for query batches.

Building a :class:`~repro.core.coverage.CoverageContext` scans every
vertex's keyword set — O(n · avg keywords) per query.  A service
answering many queries on one graph (the paper's 100-query workloads,
the CLI, the DKTG rounds) should pay that scan once:
:class:`KeywordIndex` materialises the **inverted lists**
``keyword -> [vertices carrying it]`` and then builds each query's
context in O(Σ |list(w)| for w in W_Q) — proportional to the matching
vertices only.

The resulting contexts are bit-for-bit identical to directly
constructed ones (a property test asserts this), so every solver works
unchanged; :meth:`KeywordIndex.context_for` is a drop-in replacement
for the ``CoverageContext`` constructor.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.coverage import CoverageContext
from repro.core.errors import QueryValidationError
from repro.core.graph import AttributedGraph

__all__ = ["KeywordIndex"]


class KeywordIndex:
    """Inverted ``keyword label -> vertex list`` index over one graph.

    Examples
    --------
    >>> graph = AttributedGraph(3, [], {0: ["a"], 1: ["a", "b"], 2: ["b"]})
    >>> index = KeywordIndex(graph)
    >>> index.vertices_with("a")
    (0, 1)
    >>> context = index.context_for(["a", "b"])
    >>> context.qualified_vertices()
    [0, 1, 2]
    """

    def __init__(self, graph: AttributedGraph) -> None:
        self.graph = graph
        self._built_version = graph.version
        table = graph.keyword_table
        postings: dict[str, list[int]] = {}
        for vertex in graph.vertices():
            for keyword_id in graph.keywords_of(vertex):
                postings.setdefault(table.label(keyword_id), []).append(vertex)
        self._postings: dict[str, tuple[int, ...]] = {
            label: tuple(sorted(vertices)) for label, vertices in postings.items()
        }

    # ------------------------------------------------------------------
    def is_stale(self) -> bool:
        """Whether the graph mutated since this index was built."""
        return self.graph.version != self._built_version

    def vertices_with(self, label: str) -> tuple[int, ...]:
        """Vertices carrying *label* (empty tuple when nobody does)."""
        return self._postings.get(label, ())

    def document_frequency(self, label: str) -> int:
        """How many vertices carry *label* (selectivity statistic)."""
        return len(self._postings.get(label, ()))

    def labels(self) -> list[str]:
        """All labels present on at least one vertex."""
        return sorted(self._postings)

    # ------------------------------------------------------------------
    def context_for(self, query_keywords: Sequence[str]) -> CoverageContext:
        """Build a coverage context touching only the matching vertices.

        Equivalent to ``CoverageContext(graph, query_keywords)`` but
        O(matching vertices) instead of O(all vertices); raises
        :class:`QueryValidationError` on an empty keyword set, like the
        direct constructor.
        """
        deduped: list[str] = []
        seen: set[str] = set()
        for label in query_keywords:
            if label not in seen:
                seen.add(label)
                deduped.append(label)
        if not deduped:
            raise QueryValidationError("query keyword set must not be empty")

        context = CoverageContext.__new__(CoverageContext)
        context.graph = self.graph
        context.query_labels = tuple(deduped)
        context.query_size = len(deduped)
        context.full_mask = (1 << len(deduped)) - 1
        masks = [0] * self.graph.num_vertices
        for position, label in enumerate(deduped):
            bit = 1 << position
            for vertex in self._postings.get(label, ()):
                masks[vertex] |= bit
        context.masks = masks
        return context

    def qualified_count(self, query_keywords: Sequence[str]) -> int:
        """Number of vertices covering >= 1 of *query_keywords*.

        Cheaper than building a context when only the count matters
        (e.g. workload answerability checks).
        """
        qualified: set[int] = set()
        for label in dict.fromkeys(query_keywords):
            qualified.update(self._postings.get(label, ()))
        return len(qualified)

    def __repr__(self) -> str:
        return (
            f"KeywordIndex({len(self._postings)} labels over "
            f"{self.graph.num_vertices} vertices)"
        )
