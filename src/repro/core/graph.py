"""Attributed social network substrate.

The paper models an attributed social network as a triple
``G = (V, E, kappa)`` where every vertex carries a set of keywords
(Section III).  :class:`AttributedGraph` is the in-memory representation
used by every algorithm and index in this library.

Design notes
------------
* Vertices are dense integer ids ``0..n-1``.  Dense ids let adjacency be a
  list of sets and let indexes use flat lists instead of dicts, which
  matters for the pure-Python branch-and-bound inner loops.
* Keywords are interned into integer ids by :class:`KeywordTable` so that
  per-vertex keyword sets are ``frozenset[int]`` and query-coverage math
  can use bitmasks (see :mod:`repro.core.coverage`).
* The graph is simple and undirected: self-loops and parallel edges are
  rejected at construction, mirroring the datasets used in the paper
  (friendship / co-authorship networks).
* Instances are immutable after construction except through
  :meth:`AttributedGraph.add_edge` / :meth:`AttributedGraph.remove_edge`,
  which exist to exercise the dynamic index-maintenance path (Section V-B).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Optional

from repro.core.errors import GraphConstructionError, UnknownVertexError

__all__ = ["KeywordTable", "AttributedGraph"]


class KeywordTable:
    """Bidirectional mapping between keyword strings and dense integer ids.

    The paper's figures label vertices with keyword abbreviations such as
    ``SN`` (social network) or ``QP`` (query processing).  Algorithms never
    touch strings: they operate on the integer ids produced here.

    >>> table = KeywordTable()
    >>> table.intern("SN")
    0
    >>> table.intern("QP")
    1
    >>> table.intern("SN")
    0
    >>> table.label(1)
    'QP'
    """

    __slots__ = ("_by_label", "_by_id")

    def __init__(self, labels: Iterable[str] = ()) -> None:
        self._by_label: dict[str, int] = {}
        self._by_id: list[str] = []
        for label in labels:
            self.intern(label)

    def intern(self, label: str) -> int:
        """Return the id for *label*, assigning a fresh id on first use."""
        existing = self._by_label.get(label)
        if existing is not None:
            return existing
        keyword_id = len(self._by_id)
        self._by_label[label] = keyword_id
        self._by_id.append(label)
        return keyword_id

    def id_of(self, label: str) -> int:
        """Return the id of an already-interned *label*.

        Raises :class:`KeyError` if the label was never interned.
        """
        return self._by_label[label]

    def get(self, label: str) -> Optional[int]:
        """Return the id of *label*, or ``None`` if not interned."""
        return self._by_label.get(label)

    def label(self, keyword_id: int) -> str:
        """Return the string label for *keyword_id*."""
        return self._by_id[keyword_id]

    def labels(self, keyword_ids: Iterable[int]) -> list[str]:
        """Return labels for a collection of keyword ids (sorted by id)."""
        return [self._by_id[k] for k in sorted(keyword_ids)]

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, label: object) -> bool:
        return label in self._by_label

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_id)

    def __repr__(self) -> str:
        return f"KeywordTable({len(self)} keywords)"


class AttributedGraph:
    """A simple undirected graph whose vertices carry keyword sets.

    Parameters
    ----------
    num_vertices:
        Number of vertices; ids are ``0..num_vertices-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Order within a pair is irrelevant.
        Self-loops and duplicates raise :class:`GraphConstructionError`.
    keywords:
        Either a mapping ``vertex -> iterable of keyword labels`` or a
        sequence of length ``num_vertices`` of keyword-label iterables.
        Vertices absent from the mapping get an empty keyword set.
    keyword_table:
        Optional pre-populated :class:`KeywordTable` to share label ids
        across graphs (e.g. a graph and its query generator).

    Examples
    --------
    >>> g = AttributedGraph(3, [(0, 1), (1, 2)], {0: ["SN"], 2: ["QP"]})
    >>> g.degree(1)
    2
    >>> sorted(g.neighbors(1))
    [0, 2]
    >>> g.keyword_labels(0)
    ['SN']
    """

    __slots__ = (
        "_num_vertices",
        "_adjacency",
        "_vertex_keywords",
        "_keyword_table",
        "_num_edges",
        "_version",
        "_csr_cache",
        # Weak-referenceable so per-query coverage contexts can be
        # memoised against (graph, version) without pinning the graph
        # (see KTGQuery.cached_context).
        "__weakref__",
    )

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int]] = (),
        keywords: Mapping[int, Iterable[str]] | Sequence[Iterable[str]] | None = None,
        keyword_table: Optional[KeywordTable] = None,
    ) -> None:
        if num_vertices < 0:
            raise GraphConstructionError(
                f"num_vertices must be non-negative, got {num_vertices}"
            )
        self._num_vertices = num_vertices
        self._adjacency: list[set[int]] = [set() for _ in range(num_vertices)]
        self._keyword_table = keyword_table if keyword_table is not None else KeywordTable()
        self._vertex_keywords: list[frozenset[int]] = [frozenset()] * num_vertices
        self._num_edges = 0
        # Monotonic counter bumped on every mutation; indexes use it to
        # detect that they are stale relative to the graph they indexed.
        self._version = 0
        # Cached CsrSnapshot for the current version (see csr_snapshot()).
        self._csr_cache = None

        for u, v in edges:
            self._insert_edge_checked(u, v)

        if keywords is not None:
            self._assign_keywords(keywords)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _insert_edge_checked(self, u: int, v: int) -> None:
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphConstructionError(f"self-loop on vertex {u} is not allowed")
        if v in self._adjacency[u]:
            raise GraphConstructionError(f"duplicate edge ({u}, {v})")
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._num_edges += 1

    def _assign_keywords(
        self, keywords: Mapping[int, Iterable[str]] | Sequence[Iterable[str]]
    ) -> None:
        if isinstance(keywords, Mapping):
            items: Iterable[tuple[int, Iterable[str]]] = keywords.items()
        else:
            if len(keywords) != self._num_vertices:
                raise GraphConstructionError(
                    "keyword sequence length "
                    f"{len(keywords)} != num_vertices {self._num_vertices}"
                )
            items = enumerate(keywords)
        intern = self._keyword_table.intern
        for vertex, labels in items:
            self._check_vertex(vertex)
            self._vertex_keywords[vertex] = frozenset(intern(label) for label in labels)

    def _check_vertex(self, vertex: int) -> None:
        if not isinstance(vertex, int) or isinstance(vertex, bool):
            raise GraphConstructionError(f"vertex ids must be ints, got {vertex!r}")
        if not 0 <= vertex < self._num_vertices:
            raise UnknownVertexError(vertex)

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._num_edges

    @property
    def keyword_table(self) -> KeywordTable:
        """The shared keyword label table."""
        return self._keyword_table

    @property
    def version(self) -> int:
        """Mutation counter; bumped by :meth:`add_edge`/:meth:`remove_edge`."""
        return self._version

    def vertices(self) -> range:
        """Iterate all vertex ids."""
        return range(self._num_vertices)

    def neighbors(self, vertex: int) -> frozenset[int]:
        """Return the (1-hop) neighbour set of *vertex*."""
        self._check_vertex(vertex)
        return frozenset(self._adjacency[vertex])

    def adjacency_view(self) -> Sequence[set[int]]:
        """Return the raw adjacency list (read-only by convention).

        Hot loops (BFS, index construction) use this to skip per-call
        bounds checking and set copying.  Callers must not mutate it.
        """
        return self._adjacency

    def degree(self, vertex: int) -> int:
        """Return the degree of *vertex*."""
        self._check_vertex(vertex)
        return len(self._adjacency[vertex])

    def degrees(self) -> list[int]:
        """Return the degree of every vertex, indexed by vertex id."""
        return [len(adj) for adj in self._adjacency]

    def has_edge(self, u: int, v: int) -> bool:
        """Return whether the undirected edge ``(u, v)`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adjacency[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate all edges once, as ``(u, v)`` with ``u < v``."""
        for u, adj in enumerate(self._adjacency):
            for v in adj:
                if u < v:
                    yield (u, v)

    def keywords_of(self, vertex: int) -> frozenset[int]:
        """Return the interned keyword ids of *vertex*."""
        self._check_vertex(vertex)
        return self._vertex_keywords[vertex]

    def keyword_labels(self, vertex: int) -> list[str]:
        """Return the keyword labels of *vertex* (sorted by id)."""
        return self._keyword_table.labels(self.keywords_of(vertex))

    def vertices_with_any_keyword(self, keyword_ids: frozenset[int]) -> list[int]:
        """Return vertices whose keyword set intersects *keyword_ids*.

        This is the "remove unqualified users" preprocessing step of
        Algorithm 1: a user must cover at least one query keyword to be a
        KTG candidate.
        """
        return [
            v
            for v in range(self._num_vertices)
            if not keyword_ids.isdisjoint(self._vertex_keywords[v])
        ]

    # ------------------------------------------------------------------
    # Distance primitives
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int, max_depth: Optional[int] = None) -> dict[int, int]:
        """Return hop distances from *source* to every reachable vertex.

        ``max_depth`` truncates the search: only vertices within that many
        hops are returned.  The source itself maps to 0.
        """
        self._check_vertex(source)
        adjacency = self._adjacency
        distances = {source: 0}
        frontier = [source]
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            depth += 1
            next_frontier: list[int] = []
            for u in frontier:
                for v in adjacency[u]:
                    if v not in distances:
                        distances[v] = depth
                        next_frontier.append(v)
            frontier = next_frontier
        return distances

    def hop_distance(self, u: int, v: int, cutoff: Optional[int] = None) -> Optional[int]:
        """Return the shortest-path hop count between *u* and *v*.

        Returns ``None`` if *v* is unreachable from *u* (or farther than
        *cutoff* hops when a cutoff is given).  This is Definition 1's
        social distance, computed by bidirectional-free plain BFS; the
        index structures in :mod:`repro.index` exist to avoid calling it
        in inner loops.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return 0
        adjacency = self._adjacency
        seen = {u: 0}
        frontier = [u]
        depth = 0
        while frontier and (cutoff is None or depth < cutoff):
            depth += 1
            next_frontier: list[int] = []
            for x in frontier:
                for y in adjacency[x]:
                    if y == v:
                        return depth
                    if y not in seen:
                        seen[y] = depth
                        next_frontier.append(y)
            frontier = next_frontier
        return None

    def eccentricity(self, vertex: int) -> int:
        """Return the greatest hop distance from *vertex* to any reachable vertex."""
        distances = self.bfs_distances(vertex)
        return max(distances.values(), default=0)

    # ------------------------------------------------------------------
    # Mutation (drives dynamic index maintenance, Section V-B)
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        """Insert the undirected edge ``(u, v)``.

        Raises :class:`GraphConstructionError` on self-loops or duplicates.
        """
        self._insert_edge_checked(u, v)
        self._version += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the undirected edge ``(u, v)``.

        Raises :class:`GraphConstructionError` if the edge does not exist.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adjacency[u]:
            raise GraphConstructionError(f"edge ({u}, {v}) does not exist")
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._num_edges -= 1
        self._version += 1

    def set_keywords(self, vertex: int, labels: Iterable[str]) -> None:
        """Replace the keyword set of *vertex* with *labels*."""
        self._check_vertex(vertex)
        intern = self._keyword_table.intern
        self._vertex_keywords[vertex] = frozenset(intern(label) for label in labels)
        self._version += 1

    def add_vertex(self, labels: Iterable[str] = ()) -> int:
        """Append a new isolated vertex carrying *labels*; return its id.

        Vertex ids stay dense: the new vertex gets id ``num_vertices``
        (pre-insert).  Connect it with :meth:`add_edge` afterwards.
        """
        intern = self._keyword_table.intern
        vertex = self._num_vertices
        self._adjacency.append(set())
        self._vertex_keywords.append(frozenset(intern(label) for label in labels))
        self._num_vertices += 1
        self._version += 1
        return vertex

    # ------------------------------------------------------------------
    # Frozen snapshots (see repro.core.csr)
    # ------------------------------------------------------------------
    def csr_snapshot(self):
        """Return the CSR snapshot of the current graph version.

        Built lazily and cached; a mutation (:meth:`add_edge`,
        :meth:`remove_edge`, :meth:`set_keywords`) bumps :attr:`version`,
        which invalidates the cache so the next call rebuilds.  The
        returned :class:`repro.core.csr.CsrSnapshot` is local (not
        shared memory); promote it with ``snapshot.share()`` for process
        fan-out.
        """
        from repro.core.csr import CsrSnapshot

        cached = self._csr_cache
        if cached is None or cached.graph_version != self._version:
            cached = CsrSnapshot.from_graph(self)
            self._csr_cache = cached
        return cached

    # ------------------------------------------------------------------
    # Interop & misc
    # ------------------------------------------------------------------
    def connected_components(self) -> list[int]:
        """Return a component id per vertex (ids are arbitrary but dense)."""
        component = [-1] * self._num_vertices
        adjacency = self._adjacency
        next_id = 0
        for start in range(self._num_vertices):
            if component[start] != -1:
                continue
            component[start] = next_id
            stack = [start]
            while stack:
                u = stack.pop()
                for v in adjacency[u]:
                    if component[v] == -1:
                        component[v] = next_id
                        stack.append(v)
            next_id += 1
        return component

    def average_degree(self) -> float:
        """Return ``2|E| / |V|`` (0.0 for the empty graph)."""
        if self._num_vertices == 0:
            return 0.0
        return 2.0 * self._num_edges / self._num_vertices

    def subgraph(self, vertices: Sequence[int]) -> "AttributedGraph":
        """Return the induced subgraph on *vertices* with remapped dense ids.

        Vertex ``vertices[i]`` becomes id ``i`` in the returned graph; the
        keyword table is shared with this graph.
        """
        index = {v: i for i, v in enumerate(vertices)}
        if len(index) != len(vertices):
            raise GraphConstructionError("subgraph vertex list contains duplicates")
        sub = AttributedGraph(len(vertices), keyword_table=self._keyword_table)
        for v in vertices:
            self._check_vertex(v)
        for i, v in enumerate(vertices):
            sub._vertex_keywords[i] = self._vertex_keywords[v]
            for w in self._adjacency[v]:
                j = index.get(w)
                if j is not None and i < j:
                    sub._insert_edge_checked(i, j)
        return sub

    def to_networkx(self):  # pragma: no cover - thin interop shim
        """Return a ``networkx.Graph`` copy with a ``keywords`` node attribute."""
        import networkx as nx

        nx_graph = nx.Graph()
        for v in range(self._num_vertices):
            nx_graph.add_node(v, keywords=self.keyword_labels(v))
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    @classmethod
    def from_networkx(cls, nx_graph, keyword_attr: str = "keywords") -> "AttributedGraph":
        """Build an :class:`AttributedGraph` from a ``networkx.Graph``.

        Node ids must be hashable; they are relabelled to dense ints in
        sorted order when possible, insertion order otherwise.  Keywords
        are read from the *keyword_attr* node attribute when present.
        """
        nodes = list(nx_graph.nodes())
        try:
            nodes.sort()
        except TypeError:
            pass
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nx_graph.edges() if u != v]
        keywords = {
            index[node]: nx_graph.nodes[node].get(keyword_attr, ())
            for node in nodes
        }
        return cls(len(nodes), edges, keywords)

    def __getstate__(self) -> dict:
        # The cached CsrSnapshot is process-local (it may wrap a shared
        # memory mapping) and deliberately unpicklable; drop it so the
        # graph itself stays cheap and safe to ship to process workers.
        state = {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "__weakref__"
        }
        state["_csr_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:
        return (
            f"AttributedGraph(|V|={self._num_vertices}, |E|={self._num_edges}, "
            f"|kappa|={len(self._keyword_table)})"
        )
