"""Query objects for KTG and DKTG (Definitions 7 and 10).

A :class:`KTGQuery` is the 4-tuple ``<W_Q, p, k, N>`` of the paper:

* ``keywords`` — the query keyword set ``W_Q`` (labels);
* ``group_size`` — ``p``, the exact number of members per group;
* ``tenuity`` — ``k``, the social constraint (all pairwise hop distances
  in a result group must exceed ``k``);
* ``top_n`` — ``N``, how many groups to return.

:class:`DKTGQuery` adds the diversification weight ``gamma`` from
Equation (4): ``score(RG) = gamma * min QKC(g) + (1-gamma) * dL(RG)``.

Both are frozen dataclasses: queries are values, safe to hash, reuse and
log.  Validation happens in ``__post_init__`` so an invalid query can
never be constructed.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.errors import QueryValidationError

if TYPE_CHECKING:
    from repro.core.coverage import CoverageContext

__all__ = ["KTGQuery", "DKTGQuery", "DEFAULT_GROUP_SIZE", "DEFAULT_TENUITY", "DEFAULT_TOP_N"]

# Defaults from Table I of the paper (bold entries).
DEFAULT_GROUP_SIZE = 3
DEFAULT_TENUITY = 2
DEFAULT_TOP_N = 3


@dataclass(frozen=True)
class KTGQuery:
    """A keyword-based tenuous group query ``<W_Q, p, k, N>``.

    Examples
    --------
    >>> q = KTGQuery(keywords=("SN", "QP", "DQ"), group_size=3, tenuity=1, top_n=2)
    >>> q.group_size
    3
    >>> KTGQuery(keywords=(), group_size=3)
    Traceback (most recent call last):
        ...
    repro.core.errors.QueryValidationError: query keyword set must not be empty
    """

    keywords: tuple[str, ...]
    group_size: int = DEFAULT_GROUP_SIZE
    tenuity: int = DEFAULT_TENUITY
    top_n: int = DEFAULT_TOP_N
    #: Optional "author" vertices (Section IV-B, Discussion): result members
    #: must additionally be at social distance > k from every one of these.
    excluded_anchors: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.keywords, tuple):
            object.__setattr__(self, "keywords", tuple(self.keywords))
        if not self.keywords:
            raise QueryValidationError("query keyword set must not be empty")
        if any(not isinstance(label, str) or not label for label in self.keywords):
            raise QueryValidationError("query keywords must be non-empty strings")
        if self.group_size < 1:
            raise QueryValidationError(
                f"group size p must be >= 1, got {self.group_size}"
            )
        if self.tenuity < 0:
            raise QueryValidationError(
                f"tenuity constraint k must be >= 0, got {self.tenuity}"
            )
        if self.top_n < 1:
            raise QueryValidationError(f"top_n N must be >= 1, got {self.top_n}")
        if not isinstance(self.excluded_anchors, tuple):
            object.__setattr__(self, "excluded_anchors", tuple(self.excluded_anchors))

    @property
    def keyword_set(self) -> frozenset[str]:
        """The deduplicated query keyword set."""
        return frozenset(self.keywords)

    def with_(self, **changes) -> "KTGQuery":
        """Return a copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)

    def cached_context(self, graph) -> "CoverageContext":
        """A :class:`repro.core.coverage.CoverageContext` for this query
        on *graph*, memoised on the query object.

        The packed keyword masks (and the batched solver core's mask
        matrix cached inside the context) are a pure function of
        ``(graph, graph.version, keywords)``, so repeat solves of the
        same query object — DKTG-Greedy rounds, warm service traffic —
        skip the per-solve re-pack.  The memo holds the graph *and* the
        context weakly: it never extends either's lifetime (solvers
        keep the last context alive between solves), and it is dropped
        by pickling and by ``with_``.  A graph mutation changes
        ``graph.version`` and misses the memo.
        """
        memo = self.__dict__.get("_context_memo")
        version = getattr(graph, "version", None)
        if memo is not None:
            graph_ref, memo_version, context_ref = memo
            context = context_ref()
            if (
                context is not None
                and graph_ref() is graph
                and memo_version == version
            ):
                return context
        from repro.core.coverage import CoverageContext

        context = CoverageContext(graph, self.keywords)
        try:
            memo = (weakref.ref(graph), version, weakref.ref(context))
        except TypeError:  # non-weakref-able graph type: skip the memo
            return context
        object.__setattr__(self, "_context_memo", memo)
        return context

    def __getstate__(self) -> dict:
        # The context memo is process-local (weakrefs do not pickle and
        # the context is graph-identity-keyed); fields travel as-is.
        state = dict(self.__dict__)
        state.pop("_context_memo", None)
        return state

    def describe(self) -> str:
        """One-line human-readable rendering used by the CLI and examples."""
        parts = [
            f"W_Q={{{', '.join(self.keywords)}}}",
            f"p={self.group_size}",
            f"k={self.tenuity}",
            f"N={self.top_n}",
        ]
        if self.excluded_anchors:
            parts.append(f"anchors={list(self.excluded_anchors)}")
        return "KTG<" + ", ".join(parts) + ">"


@dataclass(frozen=True)
class DKTGQuery(KTGQuery):
    """A diversified KTG query (Definition 10).

    ``gamma`` weighs keyword coverage against diversity in Equation (4);
    the paper's case study uses ``gamma = 0.5``.
    """

    gamma: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.gamma <= 1.0:
            raise QueryValidationError(
                f"gamma must be within [0, 1], got {self.gamma}"
            )

    def base_query(self) -> KTGQuery:
        """The underlying KTG query with diversification stripped."""
        return KTGQuery(
            keywords=self.keywords,
            group_size=self.group_size,
            tenuity=self.tenuity,
            top_n=self.top_n,
            excluded_anchors=self.excluded_anchors,
        )

    def describe(self) -> str:
        return super().describe().replace("KTG<", "DKTG<", 1)[:-1] + f", gamma={self.gamma}>"
