"""Epoch-rotated CSR snapshots with delta-buffered reads.

A serving fleet cannot stall on every edge insert: rebuilding the CSR
snapshot, the ball-bitset cache and the distance index from scratch per
mutation is the "full rebuild" anti-pattern the paper's Section V-B
dynamic maintenance exists to avoid.  This module layers the paper's
delta idea over :class:`repro.core.csr.CsrSnapshot`:

* an **epoch** is one frozen snapshot plus a bounded :class:`GraphDelta`
  of mutations recorded since it was cut.  Logical reads are the
  composite ``snapshot ⊕ delta`` (:class:`EpochGraphView`), which is
  bit-identical to a from-scratch graph at every delta size — the
  property tests in ``tests/properties/test_prop_epoch.py`` prove it;
* mutations route through :class:`EpochManager`, which applies them to
  the live graph **and** the delta under a writer-priority gate, then
  repairs the registered distance oracle / ball kernel incrementally
  (``epoch.repairs``) instead of letting them rebuild;
* when the delta reaches ``rotate_after`` ops a **background thread**
  compacts ``snapshot ⊕ delta`` into the next epoch's segment (shared
  memory when ``shared=True``) without touching the live graph — the
  build input is a frozen clone, so solves and further mutations keep
  flowing during the O(n+m) compaction.  Mutations that land mid-build
  are replayed into the new epoch's delta at swap time;
* readers pin the current epoch with refcounted **leases**; a retired
  epoch's shared segment is released only when its last lease drops —
  no fleet restart, no ``/dev/shm`` leak.  A delta that outruns the
  rotator (``max_delta`` ops) forces a synchronous rotation as
  backpressure.

The rotation protocol, lease semantics and delta-read cost model are
documented in ``docs/epochs.md``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional, Sequence

from repro.core.csr import CsrSnapshot
from repro.core.errors import (
    EpochError,
    GraphConstructionError,
    SnapshotError,
    UnknownVertexError,
)
from repro.core.graph import AttributedGraph, KeywordTable
from repro.obs.instruments import NULL_REGISTRY, InstrumentRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.index.base import DistanceOracle
    from repro.kernels.engine import BallBitsetEngine

__all__ = [
    "GraphDelta",
    "EpochGraphView",
    "Epoch",
    "EpochManager",
    "EpochStats",
    "counter_totals",
    "reset_counters",
]

#: Default delta depth that wakes the background rotator.
DEFAULT_ROTATE_AFTER = 64
#: Default delta depth that forces a synchronous (blocking) rotation.
DEFAULT_MAX_DELTA = 256


# ----------------------------------------------------------------------
# Module-level counters (``epoch.*`` observability family)
# ----------------------------------------------------------------------
_COUNTER_LOCK = threading.Lock()
_TOTALS = {"rotations": 0, "delta_reads": 0, "lease_waits": 0, "repairs": 0}


def _bump(name: str, amount: int, instruments: InstrumentRegistry) -> None:
    with _COUNTER_LOCK:
        _TOTALS[name] += amount
    instruments.counter(f"epoch.{name}").inc(amount)


def counter_totals() -> dict[str, int]:
    """Process-wide ``epoch.*`` totals (rotations/delta_reads/lease_waits/repairs)."""
    with _COUNTER_LOCK:
        return dict(_TOTALS)


def reset_counters() -> None:
    """Zero the process-wide counters (tests and benchmarks only)."""
    with _COUNTER_LOCK:
        for key in _TOTALS:
            _TOTALS[key] = 0


# ----------------------------------------------------------------------
# Delta buffer
# ----------------------------------------------------------------------
class GraphDelta:
    """Mutations recorded on top of one frozen :class:`CsrSnapshot`.

    The delta stores an op log (for replay across a rotation cut) plus
    materialised overlays: adjacency rows copied from the snapshot on
    first touch and then edited in place, keyword-set overrides, and a
    count of appended vertices.  ``depth`` (the op count) is the unit
    the rotation thresholds are expressed in.

    Invariant maintained by :class:`EpochManager`: every live-graph
    mutation appends exactly one op, so
    ``snapshot.graph_version + delta.depth == graph.version`` and the
    composite view's :attr:`EpochGraphView.version` tracks the live
    graph exactly.
    """

    __slots__ = ("snapshot", "ops", "adjacency", "keywords", "extra_vertices", "edge_delta")

    def __init__(self, snapshot: CsrSnapshot) -> None:
        self.snapshot = snapshot
        self.ops: list[tuple] = []
        self.adjacency: dict[int, set[int]] = {}
        self.keywords: dict[int, frozenset[int]] = {}
        self.extra_vertices = 0
        self.edge_delta = 0

    @property
    def depth(self) -> int:
        """Number of recorded ops (the rotation-threshold unit)."""
        return len(self.ops)

    @property
    def num_vertices(self) -> int:
        return self.snapshot.num_vertices + self.extra_vertices

    def _row(self, vertex: int) -> set[int]:
        row = self.adjacency.get(vertex)
        if row is None:
            if vertex < self.snapshot.num_vertices:
                row = set(self.snapshot.neighbors_list(vertex))
            else:
                row = set()
            self.adjacency[vertex] = row
        return row

    def record_add_edge(self, u: int, v: int) -> None:
        self._row(u).add(v)
        self._row(v).add(u)
        self.edge_delta += 1
        self.ops.append(("+e", u, v))

    def record_remove_edge(self, u: int, v: int) -> None:
        self._row(u).discard(v)
        self._row(v).discard(u)
        self.edge_delta -= 1
        self.ops.append(("-e", u, v))

    def record_set_keywords(self, vertex: int, keyword_ids: frozenset[int]) -> None:
        self.keywords[vertex] = keyword_ids
        self.ops.append(("kw", vertex, keyword_ids))

    def record_add_vertex(self, vertex: int, keyword_ids: frozenset[int]) -> None:
        expected = self.num_vertices
        if vertex != expected:
            raise EpochError(
                f"vertex ids must stay dense: expected {expected}, got {vertex}"
            )
        self.adjacency[vertex] = set()
        self.keywords[vertex] = keyword_ids
        self.extra_vertices += 1
        self.ops.append(("+v", vertex, keyword_ids))

    def replay(self, op: tuple) -> None:
        """Re-apply one recorded op (tail replay across a rotation cut)."""
        kind = op[0]
        if kind == "+e":
            self.record_add_edge(op[1], op[2])
        elif kind == "-e":
            self.record_remove_edge(op[1], op[2])
        elif kind == "kw":
            self.record_set_keywords(op[1], op[2])
        elif kind == "+v":
            self.record_add_vertex(op[1], op[2])
        else:  # pragma: no cover - defensive
            raise EpochError(f"unknown delta op {op!r}")

    def clone(self) -> "GraphDelta":
        """Deep copy for freezing at a rotation cut.

        The clone shares the (immutable) base snapshot but owns its op
        list and overlay containers, so the compactor can read it while
        new mutations keep editing this delta.
        """
        frozen = GraphDelta(self.snapshot)
        frozen.ops = list(self.ops)
        frozen.adjacency = {v: set(row) for v, row in self.adjacency.items()}
        frozen.keywords = dict(self.keywords)
        frozen.extra_vertices = self.extra_vertices
        frozen.edge_delta = self.edge_delta
        return frozen

    def __repr__(self) -> str:
        return (
            f"GraphDelta(depth={self.depth}, overlay_rows={len(self.adjacency)}, "
            f"extra_vertices={self.extra_vertices}, edge_delta={self.edge_delta:+d})"
        )


# ----------------------------------------------------------------------
# Composite read view
# ----------------------------------------------------------------------
class EpochGraphView:
    """Read-only ``snapshot ⊕ delta`` composite with the GraphLike API.

    Unchanged rows delegate to a cached :class:`~repro.core.csr.CsrGraphView`
    over the frozen snapshot; rows the delta touched are served from its
    overlay (each overlay consult counts one ``epoch.delta_reads``).
    The view is what the background compactor feeds to
    :meth:`CsrSnapshot.from_graph` — ``from_graph`` consumes only this
    read API and sorts each row, so compaction never touches the live
    graph and its output is bit-identical to a snapshot of a
    from-scratch graph.

    Cost model: reads are O(base read) plus one dict probe; a touched
    row costs one frozenset copy.  Mutators raise
    :class:`~repro.core.errors.SnapshotError`.
    """

    __slots__ = ("_snapshot", "_delta", "_keyword_table", "_instruments")

    def __init__(
        self,
        snapshot: CsrSnapshot,
        delta: GraphDelta,
        keyword_table: KeywordTable,
        *,
        instruments: InstrumentRegistry = NULL_REGISTRY,
    ) -> None:
        if delta.snapshot is not snapshot:
            raise EpochError("delta was recorded against a different snapshot")
        self._snapshot = snapshot
        self._delta = delta
        self._keyword_table = keyword_table
        self._instruments = instruments

    def _delta_read(self, amount: int = 1) -> None:
        _bump("delta_reads", amount, self._instruments)

    # ------------------------------------------------------------------
    # Identity / metadata
    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> CsrSnapshot:
        return self._snapshot

    @property
    def delta(self) -> GraphDelta:
        return self._delta

    @property
    def num_vertices(self) -> int:
        return self._delta.num_vertices

    @property
    def num_edges(self) -> int:
        return self._snapshot.num_edges + self._delta.edge_delta

    @property
    def version(self) -> int:
        """Base snapshot version plus delta depth (== live ``graph.version``)."""
        return self._snapshot.graph_version + self._delta.depth

    @property
    def keyword_table(self) -> KeywordTable:
        return self._keyword_table

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------
    def vertices(self) -> range:
        return range(self.num_vertices)

    def neighbors(self, vertex: int) -> frozenset[int]:
        self._check_vertex(vertex)
        row = self._delta.adjacency.get(vertex)
        if row is not None:
            self._delta_read()
            return frozenset(row)
        return frozenset(self._snapshot.neighbors_list(vertex))

    def adjacency_view(self) -> Sequence[frozenset[int]]:
        """Composite per-vertex neighbour sets (fresh list each call)."""
        snapshot = self._snapshot
        indptr = snapshot.indptr
        indices = snapshot.indices
        overlay = self._delta.adjacency
        rows: list[frozenset[int]] = [
            frozenset(indices[indptr[v] : indptr[v + 1]])
            for v in range(snapshot.num_vertices)
        ]
        rows.extend([frozenset()] * self._delta.extra_vertices)
        for v, row in overlay.items():
            rows[v] = frozenset(row)
        if overlay:
            self._delta_read(len(overlay))
        return rows

    def degree(self, vertex: int) -> int:
        return len(self.neighbors(vertex))

    def degrees(self) -> list[int]:
        return [len(row) for row in self.adjacency_view()]

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(v)
        return v in self.neighbors(u)

    def edges(self) -> Iterator[tuple[int, int]]:
        for u, row in enumerate(self.adjacency_view()):
            for v in row:
                if u < v:
                    yield (u, v)

    def keywords_of(self, vertex: int) -> frozenset[int]:
        self._check_vertex(vertex)
        overridden = self._delta.keywords.get(vertex)
        if overridden is not None:
            self._delta_read()
            return overridden
        if vertex >= self._snapshot.num_vertices:  # pragma: no cover - defensive
            return frozenset()
        return self._base_keywords(vertex)

    def _base_keywords(self, vertex: int) -> frozenset[int]:
        snapshot = self._snapshot
        if snapshot.kw_stride == 0:
            return frozenset()
        bits = snapshot.keyword_mask(vertex)
        ids: list[int] = []
        while bits:
            low = bits & -bits
            ids.append(low.bit_length() - 1)
            bits ^= low
        return frozenset(ids)

    def keyword_labels(self, vertex: int) -> list[str]:
        return self._keyword_table.labels(self.keywords_of(vertex))

    def vertices_with_any_keyword(self, keyword_ids: frozenset[int]) -> list[int]:
        return [
            v
            for v in range(self.num_vertices)
            if not keyword_ids.isdisjoint(self.keywords_of(v))
        ]

    # ------------------------------------------------------------------
    # Distance primitives (BFS over the composite adjacency)
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int, max_depth: Optional[int] = None) -> dict[int, int]:
        self._check_vertex(source)
        adjacency = self.adjacency_view()
        distances = {source: 0}
        frontier = [source]
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            depth += 1
            next_frontier: list[int] = []
            for u in frontier:
                for v in adjacency[u]:
                    if v not in distances:
                        distances[v] = depth
                        next_frontier.append(v)
            frontier = next_frontier
        return distances

    def hop_distance(self, u: int, v: int, cutoff: Optional[int] = None) -> Optional[int]:
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return 0
        distances = self.bfs_distances(u, max_depth=cutoff)
        return distances.get(v)

    # ------------------------------------------------------------------
    # Mutators are forbidden on the composite view
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        raise SnapshotError("EpochGraphView is frozen; mutate via the EpochManager")

    def remove_edge(self, u: int, v: int) -> None:
        raise SnapshotError("EpochGraphView is frozen; mutate via the EpochManager")

    def set_keywords(self, vertex: int, labels: object) -> None:
        raise SnapshotError("EpochGraphView is frozen; mutate via the EpochManager")

    # ------------------------------------------------------------------
    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise UnknownVertexError(vertex)

    def __repr__(self) -> str:
        return (
            f"EpochGraphView(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"version={self.version}, delta_depth={self._delta.depth})"
        )


# ----------------------------------------------------------------------
# Epoch bookkeeping
# ----------------------------------------------------------------------
class Epoch:
    """One frozen snapshot generation, pinned by reader leases."""

    __slots__ = ("epoch_id", "snapshot", "refcount", "retired", "released")

    def __init__(self, epoch_id: int, snapshot: CsrSnapshot) -> None:
        self.epoch_id = epoch_id
        self.snapshot = snapshot
        self.refcount = 0
        self.retired = False
        self.released = False

    def __repr__(self) -> str:
        state = "retired" if self.retired else "current"
        return (
            f"Epoch(id={self.epoch_id}, leases={self.refcount}, {state}, "
            f"snapshot={self.snapshot!r})"
        )


@dataclass(frozen=True)
class EpochStats:
    """Operator-facing staleness/lifecycle metrics for one manager."""

    epoch_id: int
    delta_depth: int
    rotations: int
    overflow_rotations: int
    last_rotation_ms: float
    active_leases: int
    draining_epochs: int
    repairs: int

    def as_dict(self) -> dict:
        return {
            "epoch_id": self.epoch_id,
            "delta_depth": self.delta_depth,
            "rotations": self.rotations,
            "overflow_rotations": self.overflow_rotations,
            "last_rotation_ms": round(self.last_rotation_ms, 3),
            "active_leases": self.active_leases,
            "draining_epochs": self.draining_epochs,
            "repairs": self.repairs,
        }


# ----------------------------------------------------------------------
# Reader/writer gate
# ----------------------------------------------------------------------
class _ReadWriteGate:
    """Writer-priority reader-writer lock (non-reentrant).

    Solves hold the read side for their whole search so they never
    observe a half-applied mutation or a mid-repair oracle; mutations
    hold the write side.  Writers have priority: a waiting writer
    blocks *new* readers, so a steady query stream cannot starve the
    mutation path.  Rotation compaction deliberately takes neither side
    — it reads a frozen delta clone.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


# ----------------------------------------------------------------------
# Manager
# ----------------------------------------------------------------------
class EpochManager:
    """Owns the live graph's mutation path and the epoch lifecycle.

    Parameters
    ----------
    graph:
        The live :class:`AttributedGraph`.  All mutations must go
        through this manager once it exists; direct ``graph.add_edge``
        calls would desynchronise the delta from the graph version.
    rotate_after:
        Delta depth at which a rotation is scheduled (background by
        default, inline when ``rotate_sync=True``).
    max_delta:
        Hard delta bound; reaching it forces a synchronous rotation on
        the mutating thread (backpressure when the rotator falls
        behind).
    shared:
        Promote each epoch's snapshot into a shared-memory segment
        (``snapshot.share()``), exercising the cross-process attach
        path; retired segments are released when their last lease
        drops.
    rotate_sync:
        Rotate inline on the mutating thread at ``rotate_after`` —
        deterministic rotation counts for benches and tests.
    instruments:
        Registry for the ``epoch.*`` counter family.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        *,
        rotate_after: int = DEFAULT_ROTATE_AFTER,
        max_delta: int = DEFAULT_MAX_DELTA,
        shared: bool = False,
        rotate_sync: bool = False,
        instruments: InstrumentRegistry = NULL_REGISTRY,
    ) -> None:
        if rotate_after < 1:
            raise ValueError(f"rotate_after must be >= 1, got {rotate_after}")
        if max_delta < rotate_after:
            raise ValueError(
                f"max_delta ({max_delta}) must be >= rotate_after ({rotate_after})"
            )
        self.graph = graph
        self._rotate_after = rotate_after
        self._max_delta = max_delta
        self._shared = shared
        self._rotate_sync = rotate_sync
        self._instruments = instruments
        self._gate = _ReadWriteGate()
        self._lock = threading.Lock()
        self._rotate_lock = threading.Lock()
        self._oracle_provider: Optional[Callable[[], Optional["DistanceOracle"]]] = None
        self._kernel_provider: Optional[Callable[[], Optional["BallBitsetEngine"]]] = None
        snapshot = CsrSnapshot.from_graph(graph, instruments=instruments)
        if shared:
            snapshot = snapshot.share(instruments=instruments)
        self._epoch = Epoch(0, snapshot)
        self._delta = GraphDelta(snapshot)
        self._draining: list[Epoch] = []
        self._rotations = 0
        self._overflow_rotations = 0
        self._repairs = 0
        self._last_rotation_ms = 0.0
        self._closed = False
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Repair-target registration (set by QueryService)
    # ------------------------------------------------------------------
    def set_repair_targets(
        self,
        oracle_provider: Optional[Callable[[], Optional["DistanceOracle"]]] = None,
        kernel_provider: Optional[Callable[[], Optional["BallBitsetEngine"]]] = None,
    ) -> None:
        """Register callables yielding the live oracle/kernel to repair.

        Providers return ``None`` while the structure is not built yet;
        mutations then fall back to plain graph edits (there is nothing
        to repair).
        """
        self._oracle_provider = oracle_provider
        self._kernel_provider = kernel_provider

    def _current_oracle(self) -> Optional["DistanceOracle"]:
        return self._oracle_provider() if self._oracle_provider is not None else None

    def _current_kernel(self) -> Optional["BallBitsetEngine"]:
        return self._kernel_provider() if self._kernel_provider is not None else None

    # ------------------------------------------------------------------
    # Mutation API (the only legal write path in epoch mode)
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        """Insert edge ``(u, v)``: graph + delta + incremental repairs."""
        with self._gate.write():
            with self._lock:
                self._check_open()
                if u == v:
                    raise GraphConstructionError(
                        f"self-loop on vertex {u} is not allowed"
                    )
                if self.graph.has_edge(u, v):
                    raise GraphConstructionError(f"duplicate edge ({u}, {v})")
                oracle = self._current_oracle()
                if oracle is not None:
                    # The oracle drives the mutation so it can snapshot
                    # pre-mutation distances for its affected-label rule.
                    oracle.insert_edge(u, v)
                    self._count_repair()
                else:
                    self.graph.add_edge(u, v)
                self._delta.record_add_edge(u, v)
                self._repair_kernel_edge(u, v)
        self._after_mutation()

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``(u, v)``: graph + delta + incremental repairs."""
        with self._gate.write():
            with self._lock:
                self._check_open()
                if not self.graph.has_edge(u, v):
                    raise GraphConstructionError(f"edge ({u}, {v}) does not exist")
                oracle = self._current_oracle()
                if oracle is not None:
                    oracle.delete_edge(u, v)
                    self._count_repair()
                else:
                    self.graph.remove_edge(u, v)
                self._delta.record_remove_edge(u, v)
                self._repair_kernel_edge(u, v)
        self._after_mutation()

    def set_keywords(self, vertex: int, labels: Iterable[str]) -> None:
        """Replace *vertex*'s keywords.  Distances are unaffected, so the
        oracle/kernel only resync their version stamps (no eviction)."""
        with self._gate.write():
            with self._lock:
                self._check_open()
                self.graph.set_keywords(vertex, labels)
                self._delta.record_set_keywords(vertex, self.graph.keywords_of(vertex))
                oracle = self._current_oracle()
                if oracle is not None:
                    oracle.note_keywords_changed()
                    self._count_repair()
                kernel = self._current_kernel()
                if kernel is not None:
                    kernel.sync_version()
        self._after_mutation()

    def add_vertex(self, labels: Iterable[str] = ()) -> int:
        """Append a new isolated vertex; return its dense id."""
        with self._gate.write():
            with self._lock:
                self._check_open()
                oracle = self._current_oracle()
                if oracle is not None:
                    vertex = oracle.insert_vertex(labels)
                    self._count_repair()
                else:
                    vertex = self.graph.add_vertex(labels)
                self._delta.record_add_vertex(vertex, self.graph.keywords_of(vertex))
                kernel = self._current_kernel()
                if kernel is not None:
                    kernel.sync_version()
        self._after_mutation()
        return vertex

    def _repair_kernel_edge(self, u: int, v: int) -> None:
        kernel = self._current_kernel()
        if kernel is not None:
            kernel.apply_edge_update(u, v)
            self._count_repair()

    def _count_repair(self) -> None:
        self._repairs += 1
        _bump("repairs", 1, self._instruments)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @contextmanager
    def read(self) -> Iterator[None]:
        """Solve-consistency gate: hold for the duration of one solve."""
        with self._gate.read():
            yield

    @contextmanager
    def lease(self) -> Iterator[Epoch]:
        """Pin the current epoch; its segment outlives rotation until exit."""
        with self._lock:
            self._check_open()
            epoch = self._epoch
            epoch.refcount += 1
        try:
            yield epoch
        finally:
            self._drop_lease(epoch)

    def _drop_lease(self, epoch: Epoch) -> None:
        release = False
        with self._lock:
            epoch.refcount -= 1
            if epoch.retired and epoch.refcount == 0 and not epoch.released:
                epoch.released = True
                release = True
                if epoch in self._draining:
                    self._draining.remove(epoch)
        if release:
            self._release_snapshot(epoch.snapshot)

    def _release_snapshot(self, snapshot: CsrSnapshot) -> None:
        # Local (non-shared) snapshots just get garbage-collected; only
        # owned shared segments need an explicit unlink.
        if snapshot.is_shared and snapshot.is_owner:
            snapshot.release(instruments=self._instruments)

    def view(self) -> EpochGraphView:
        """Composite ``snapshot ⊕ delta`` view of the *current* state."""
        with self._lock:
            self._check_open()
            return EpochGraphView(
                self._epoch.snapshot,
                self._delta,
                self.graph.keyword_table,
                instruments=self._instruments,
            )

    def current_epoch(self) -> Epoch:
        with self._lock:
            return self._epoch

    def segment_name(self) -> Optional[str]:
        """Shared-memory name of the current epoch (``None`` unless shared)."""
        with self._lock:
            return self._epoch.snapshot.name

    # ------------------------------------------------------------------
    # Rotation
    # ------------------------------------------------------------------
    def _after_mutation(self) -> None:
        with self._lock:
            if self._closed:
                return
            depth = self._delta.depth
        if depth >= self._max_delta:
            self.rotate(reason="overflow")
        elif depth >= self._rotate_after:
            if self._rotate_sync:
                self.rotate(reason="threshold")
            else:
                self._ensure_rotator()
                self._wake.set()

    def _ensure_rotator(self) -> None:
        if self._thread is None:
            with self._lock:
                if self._thread is None and not self._closed:
                    self._thread = threading.Thread(
                        target=self._background_loop,
                        name="ktg-epoch-rotator",
                        daemon=True,
                    )
                    self._thread.start()

    def _background_loop(self) -> None:
        while True:
            self._wake.wait()
            self._wake.clear()
            with self._lock:
                if self._closed:
                    return
            try:
                self.rotate(reason="threshold")
            except EpochError:  # closed mid-rotation
                return

    def rotate(self, *, reason: str = "manual") -> bool:
        """Compact ``snapshot ⊕ delta`` into the next epoch and swap.

        Returns whether a rotation happened (threshold/overflow calls
        re-check the depth under the rotation lock and skip when a
        concurrent rotation already drained the delta).  The compaction
        itself runs outside every lock: its input is a frozen delta
        clone, so solves and further mutations proceed while the next
        segment is built.  Mutations that arrive mid-build are replayed
        into the new epoch's delta at swap time.
        """
        with self._rotate_lock:
            started = time.perf_counter()
            with self._lock:
                self._check_open()
                depth = self._delta.depth
                if reason == "threshold" and depth < self._rotate_after:
                    return False
                if reason == "overflow" and depth < self._max_delta:
                    return False
                if reason == "manual" and depth == 0:
                    return False
                frozen = self._delta.clone()
                base = self._epoch.snapshot
                # Freeze the label universe too: the live KeywordTable is
                # append-only but a concurrent set_keywords could intern a
                # new label between from_graph reading len(table) and
                # list(table), corrupting the blob.
                frozen_table = KeywordTable(list(self.graph.keyword_table))
            cut = frozen.depth
            view = EpochGraphView(
                base, frozen, frozen_table, instruments=self._instruments
            )
            new_snapshot = CsrSnapshot.from_graph(view, instruments=self._instruments)
            if self._shared:
                shared = new_snapshot.share(instruments=self._instruments)
                new_snapshot = shared
            with self._lock:
                self._check_open()
                tail = self._delta.ops[cut:]
                new_delta = GraphDelta(new_snapshot)
                for op in tail:
                    new_delta.replay(op)
                old = self._epoch
                self._epoch = Epoch(old.epoch_id + 1, new_snapshot)
                self._delta = new_delta
                self._rotations += 1
                if reason == "overflow":
                    self._overflow_rotations += 1
                self._last_rotation_ms = (time.perf_counter() - started) * 1000.0
                self._retire_locked(old)
            _bump("rotations", 1, self._instruments)
            return True

    def _retire_locked(self, epoch: Epoch) -> None:
        epoch.retired = True
        if epoch.refcount == 0:
            if not epoch.released:
                epoch.released = True
                self._release_snapshot(epoch.snapshot)
        else:
            # Readers still drain on the old segment; the last lease
            # drop releases it.  Count the rotation that had to wait.
            self._draining.append(epoch)
            _bump("lease_waits", 1, self._instruments)

    # ------------------------------------------------------------------
    # Stats / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> EpochStats:
        with self._lock:
            return EpochStats(
                epoch_id=self._epoch.epoch_id,
                delta_depth=self._delta.depth,
                rotations=self._rotations,
                overflow_rotations=self._overflow_rotations,
                last_rotation_ms=self._last_rotation_ms,
                active_leases=self._epoch.refcount
                + sum(e.refcount for e in self._draining),
                draining_epochs=len(self._draining),
                repairs=self._repairs,
            )

    def close(self) -> None:
        """Stop the rotator and release every epoch segment (idempotent).

        Shutdown overrides leases: a server tearing down must not leave
        ``/dev/shm`` populated because a reader went away without
        dropping its lease.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            to_release = [self._epoch] + [
                e for e in self._draining if not e.released
            ]
            for epoch in to_release:
                epoch.retired = True
                epoch.released = True
            self._draining.clear()
        self._wake.set()
        if thread is not None:
            thread.join(timeout=5.0)
        for epoch in to_release:
            self._release_snapshot(epoch.snapshot)

    def _check_open(self) -> None:
        if self._closed:
            raise EpochError("EpochManager is closed")

    def __enter__(self) -> "EpochManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"EpochManager(epoch={self._epoch.epoch_id}, "
                f"delta_depth={self._delta.depth}, rotations={self._rotations}, "
                f"shared={self._shared}{', closed' if self._closed else ''})"
            )
