"""Exact DKTG solver for small instances (Section VI-C's yardstick).

The paper analyses DKTG-Greedy's approximation ratio against the
idealised optimum ``score = 1``; on real instances the *actual* optimum
matters more.  This solver computes it exactly by enumerating the
feasible k-distance groups and searching over N-subsets of them for the
best Equation 4 score — exponential, usable only at case-study scale,
and exactly what the approximation-quality tests and the DKTG ablation
bench need to quantify how close the greedy lands in practice.

Two practical bounds keep the subset search civil:

* feasible groups are first deduplicated and capped (``max_groups``) by
  coverage — a score-optimal result set always exists among high
  coverage groups when ``gamma > 0``, but *diversity* may favour
  lower-coverage disjoint groups, so the cap is a documented
  approximation knob that defaults high enough for exactness on
  case-study instances;
* subsets are grown with a running min-coverage bound: if even perfect
  diversity (dL = 1) cannot beat the incumbent, the branch dies.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.branch_and_bound import SearchStats
from repro.core.bruteforce import BruteForceSolver
from repro.core.dktg import DKTGResult, dktg_score, result_diversity
from repro.core.graph import AttributedGraph
from repro.core.query import DKTGQuery
from repro.core.results import Group
from repro.index.base import DistanceOracle

__all__ = ["DKTGExactSolver"]


class DKTGExactSolver:
    """Optimal DKTG answers by exhaustive search over feasible groups.

    Parameters
    ----------
    graph:
        The attributed social network (keep it small: the group
        enumeration is ``C(|qualified|, p)``).
    oracle:
        Distance oracle shared with the enumeration.
    max_groups:
        Cap on the number of candidate groups fed to the subset search,
        keeping the highest-coverage ones.  ``None`` disables the cap.
    distance_engine / kernel:
        Forwarded to the inner :class:`BruteForceSolver` enumerator;
        see :class:`repro.core.branch_and_bound.BranchAndBoundSolver`.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        oracle: Optional[DistanceOracle] = None,
        max_groups: Optional[int] = 512,
        distance_engine: str = "oracle",
        kernel=None,
    ) -> None:
        if max_groups is not None and max_groups < 1:
            raise ValueError(f"max_groups must be positive or None, got {max_groups}")
        self.graph = graph
        self.oracle = oracle
        self.max_groups = max_groups
        self.distance_engine = distance_engine
        self.kernel = kernel

    @property
    def algorithm_name(self) -> str:
        return "DKTG-EXACT"

    # ------------------------------------------------------------------
    def solve(self, query: DKTGQuery) -> DKTGResult:
        stats = SearchStats()
        started = time.perf_counter()

        candidates = self._feasible_groups(query, stats)
        best_subset: list[Group] = []
        best_score = -1.0

        def grow(start: int, chosen: list[Group], min_coverage: float) -> None:
            nonlocal best_subset, best_score
            stats.nodes_expanded += 1
            if chosen:
                score = dktg_score(
                    [group.coverage for group in chosen],
                    [group.members for group in chosen],
                    query.gamma,
                )
                if len(chosen) == query.top_n and score > best_score:
                    best_score = score
                    best_subset = list(chosen)
            if len(chosen) == query.top_n:
                return
            # Bound: even with perfect diversity, the coverage term is
            # capped by the current minimum coverage.
            optimistic = query.gamma * min_coverage + (1.0 - query.gamma)
            if chosen and optimistic <= best_score:
                stats.keyword_prunes += 1
                return
            for index in range(start, len(candidates)):
                group = candidates[index]
                chosen.append(group)
                grow(index + 1, chosen, min(min_coverage, group.coverage))
                chosen.pop()

        grow(0, [], 1.0)

        # Fall back to the best (< N)-subset when fewer than N feasible
        # groups exist, mirroring DKTG-Greedy's partial results.
        if not best_subset and candidates:
            best_subset = candidates[: query.top_n]
            best_score = dktg_score(
                [group.coverage for group in best_subset],
                [group.members for group in best_subset],
                query.gamma,
            )

        member_sets = [group.members for group in best_subset]
        stats.elapsed_seconds = time.perf_counter() - started
        return DKTGResult(
            query=query,
            algorithm=self.algorithm_name,
            groups=tuple(best_subset),
            diversity=result_diversity(member_sets),
            score=max(best_score, 0.0),
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _feasible_groups(self, query: DKTGQuery, stats: SearchStats) -> list[Group]:
        """Enumerate feasible k-distance groups, best coverage first."""
        enumerator = BruteForceSolver(
            self.graph,
            oracle=self.oracle,
            distance_engine=self.distance_engine,
            kernel=self.kernel,
        )
        # Reuse the brute forcer with a huge pool to collect all groups.
        base = query.base_query().with_(top_n=1_000_000)
        result = enumerator.solve(base)
        stats.feasible_groups = len(result.groups)
        groups = list(result.groups)
        if self.max_groups is not None and len(groups) > self.max_groups:
            groups = groups[: self.max_groups]
        return groups
