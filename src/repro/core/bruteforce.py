"""Brute-force exact KTG baseline (Section III).

Enumerates every ``C(|qualified|, p)`` combination, keeps the feasible
(k-distance) ones, and pools the top N by coverage.  Exponential, but on
small graphs it is the ground truth every branch-and-bound variant is
validated against — the property-based tests compare coverage profiles
between this solver and each BB configuration.

A mild short-circuit is applied (combinations are grown with incremental
tenuity checks rather than generated blindly), which changes nothing
about what is enumerated, only how fast infeasible prefixes die.  Pass
``check_prefix_tenuity=False`` to get the literal generate-then-test
method whose cost the paper quotes as ``O(|V|^p)``.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Optional, Sequence

from repro.core.branch_and_bound import KTGResult, SearchStats
from repro.core.coverage import CoverageContext
from repro.core.errors import IndexBuildError
from repro.core.graph import AttributedGraph
from repro.core.query import KTGQuery
from repro.core.results import TopNPool
from repro.index.base import DistanceOracle
from repro.index.bfs import BFSOracle

__all__ = ["BruteForceSolver"]


class BruteForceSolver:
    """Exhaustive top-N KTG solver (the paper's naive method).

    ``distance_engine="bitset"`` (or a shared *kernel*) answers the
    per-pair tenuity checks from cached k-hop ball bitsets instead of
    oracle probes; the enumeration order and results are identical.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        oracle: Optional[DistanceOracle] = None,
        check_prefix_tenuity: bool = True,
        distance_engine: str = "oracle",
        kernel=None,
        kernel_backend: str = "auto",
    ) -> None:
        self.graph = graph
        self.oracle = oracle if oracle is not None else BFSOracle(graph)
        self.check_prefix_tenuity = check_prefix_tenuity
        self.kernel_backend = kernel_backend
        if kernel is None and distance_engine == "oracle":
            self.kernel = None
        else:
            from repro.kernels.engine import resolve_distance_engine

            self.kernel = resolve_distance_engine(
                distance_engine, self.oracle, kernel, kernel_backend=kernel_backend
            )
        self.distance_engine = "bitset" if self.kernel is not None else "oracle"

    @property
    def algorithm_name(self) -> str:
        return f"KTG-BRUTE-{self.oracle.name.upper()}"

    def solve(
        self,
        query: KTGQuery,
        candidates: Optional[Sequence[int]] = None,
    ) -> KTGResult:
        """Answer *query* by exhaustive enumeration."""
        if self.oracle.is_stale():
            raise IndexBuildError(
                "the distance oracle was built on an older version of the "
                "graph; rebuild it before solving"
            )
        stats = SearchStats()
        started = time.perf_counter()

        context = query.cached_context(self.graph)
        pool = TopNPool(query.top_n)

        if candidates is None:
            qualified = context.qualified_vertices()
        else:
            masks = context.masks
            qualified = [v for v in candidates if masks[v]]
        for anchor in query.excluded_anchors:
            if self.kernel is not None:
                qualified = self.kernel.filter_candidates(
                    qualified, anchor, query.tenuity
                )
            else:
                qualified = self.oracle.filter_candidates(
                    qualified, anchor, query.tenuity
                )
            qualified = [v for v in qualified if v != anchor]

        if self.check_prefix_tenuity:
            self._grow([], qualified, query, context, pool, stats)
        else:
            self._generate_and_test(qualified, query, context, pool, stats)

        stats.elapsed_seconds = time.perf_counter() - started
        return KTGResult(
            query=query,
            algorithm=self.algorithm_name,
            groups=tuple(pool.best()),
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _generate_and_test(
        self,
        qualified: list[int],
        query: KTGQuery,
        context: CoverageContext,
        pool: TopNPool,
        stats: SearchStats,
    ) -> None:
        """The literal naive method: enumerate all combinations, then test."""
        kernel = self.kernel
        is_tenuous = self.oracle.is_tenuous
        k = query.tenuity
        for members in combinations(qualified, query.group_size):
            stats.nodes_expanded += 1
            if kernel is not None:
                feasible = kernel.pairwise_tenuous(members, k)
            else:
                feasible = all(
                    is_tenuous(u, v, k)
                    for i, u in enumerate(members)
                    for v in members[i + 1 :]
                )
            if feasible:
                stats.feasible_groups += 1
                if pool.offer(members, context.group_coverage(members)):
                    stats.offers_accepted += 1

    def _grow(
        self,
        members: list[int],
        rest: list[int],
        query: KTGQuery,
        context: CoverageContext,
        pool: TopNPool,
        stats: SearchStats,
    ) -> None:
        """Enumerate combinations, dropping infeasible prefixes early."""
        stats.nodes_expanded += 1
        if len(members) == query.group_size:
            stats.feasible_groups += 1
            if pool.offer(members, context.group_coverage(members)):
                stats.offers_accepted += 1
            return
        slots = query.group_size - len(members)
        kernel = self.kernel
        is_tenuous = self.oracle.is_tenuous
        k = query.tenuity
        members_mask = kernel.encode(members) if kernel is not None else 0
        for position, vertex in enumerate(rest):
            if len(rest) - position < slots:
                break
            if kernel is not None:
                extends = kernel.new_member_tenuous(members_mask, vertex, k)
            else:
                extends = all(is_tenuous(vertex, member, k) for member in members)
            if extends:
                members.append(vertex)
                self._grow(members, rest[position + 1 :], query, context, pool, stats)
                members.pop()
