"""Exception hierarchy for the KTG reproduction library.

Every error raised by the public API derives from :class:`ReproError`, so
callers can catch one base class.  Subclasses exist per failure domain
(graph construction, query validation, index usage) because different
call sites want to handle them differently: a web service validating user
queries cares about :class:`QueryValidationError`, while an ingestion
pipeline cares about :class:`GraphConstructionError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphConstructionError",
    "UnknownVertexError",
    "QueryValidationError",
    "InfeasibleQueryError",
    "IndexBuildError",
    "IndexUpdateError",
    "SnapshotError",
    "SnapshotAttachError",
    "EpochError",
    "KernelBackendError",
    "ShardError",
    "UnknownGraphError",
    "DatasetError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphConstructionError(ReproError):
    """Raised when an attributed graph cannot be built from its inputs.

    Typical causes: self-loops, duplicate edges with conflicting data,
    edges referencing vertices that were never declared, or keyword
    tables mentioning unknown vertices.
    """


class UnknownVertexError(ReproError, KeyError):
    """Raised when an operation references a vertex id not in the graph."""

    def __init__(self, vertex: int) -> None:
        super().__init__(vertex)
        self.vertex = vertex

    def __str__(self) -> str:  # KeyError quotes its repr; give a message.
        return f"vertex {self.vertex} is not in the graph"


class QueryValidationError(ReproError, ValueError):
    """Raised when a KTG/DKTG query has invalid parameters.

    Examples: ``p < 2``, ``k < 0``, ``N < 1``, an empty query keyword
    set, or a diversification weight outside ``[0, 1]``.
    """


class InfeasibleQueryError(ReproError):
    """Raised when a query is well-formed but can never produce a group.

    The canonical case is ``p`` larger than the number of vertices that
    cover at least one query keyword.  Solvers normally *return* an empty
    result instead of raising; this error is reserved for strict mode.
    """


class IndexBuildError(ReproError):
    """Raised when a distance index cannot be constructed."""


class IndexUpdateError(ReproError):
    """Raised when a dynamic index update (edge insert/delete) is invalid.

    For example deleting an edge that does not exist, or inserting an
    edge whose endpoints are unknown to the indexed graph.
    """


class SnapshotError(ReproError):
    """Raised for invalid operations on a frozen CSR graph snapshot.

    Examples: mutating through a :class:`repro.core.csr.CsrGraphView`,
    sharing a snapshot that has already been released, or reading buffers
    after :meth:`repro.core.csr.CsrSnapshot.close`.
    """


class SnapshotAttachError(SnapshotError):
    """Raised when attaching to a shared CSR segment fails.

    The canonical cause is attach-after-release: the owning engine has
    already unlinked the segment (shutdown or ``graph.version`` bump) and
    the name no longer resolves.
    """


class EpochError(SnapshotError):
    """Raised for invalid operations on an epoch manager.

    Examples: mutating through a closed
    :class:`repro.core.epoch.EpochManager`, or enabling epoch serving
    on a service configuration that cannot support it (see
    ``QueryService(mutations=True)``).
    """


class KernelBackendError(ReproError, RuntimeError):
    """Raised when a vectorized kernel backend cannot be used.

    The canonical cause is forcing ``kernel_backend="numpy"`` in an
    environment where numpy is not importable; ``"auto"`` falls back to
    the pure-python kernels instead of raising.
    """


class ShardError(ReproError):
    """Raised for invalid shard partitioning or registry operations.

    Examples: sharding an empty graph, a replication radius below 1, or
    loading a registry entry without a dataset profile or graph.
    """


class UnknownGraphError(ShardError, KeyError):
    """Raised when a registry operation names a graph never loaded."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:  # KeyError quotes its repr; give a message.
        return f"no graph named {self.name!r} is registered"


class DatasetError(ReproError):
    """Raised for dataset loading/generation failures."""


class WorkloadError(ReproError):
    """Raised when a query workload cannot be generated as requested."""
