"""Candidate-ordering strategies for the branch-and-bound search.

The paper's three exact algorithms differ only in *how the remaining
candidate set ``S_R`` is ordered* before the next member is selected:

* **QKC** (Section IV-A, evaluated as KTG-QKC-*): sort once by static
  query-keyword coverage, never re-sort.  Cheap per node, but the head
  of ``S_R`` stops being the best "increment" as soon as keywords are
  covered.
* **VKC** (KTG-VKC-*): re-sort by *valid* keyword coverage — the new
  keywords a candidate would add on top of the intermediate group —
  every time the group grows (Definition 8).
* **VKC-DEG** (KTG-VKC-DEG-*): VKC order with vertex degree as the
  tie-break.  The paper motivates preferring *small* degree ("the
  smaller is the degree of a vertex, the more vertices are unfamiliar
  with this vertex") even though one sentence says "descending order";
  we follow the motivation and the worked example (ascending), and
  expose ``degree_order`` so the ablation bench can measure both.

A strategy is a small stateless object with two hooks: an initial
ordering of the qualified candidates, and a re-ordering applied after
each member joins ``S_I``.  Both receive plain vertex-id lists and the
current covered-keyword mask, so strategies compose with any distance
oracle.
"""

from __future__ import annotations

import abc
from typing import Literal, Optional

from repro.core.coverage import CoverageContext

__all__ = [
    "OrderingStrategy",
    "QKCOrdering",
    "VKCOrdering",
    "VKCDegreeOrdering",
    "strategy_by_name",
]


class OrderingStrategy(abc.ABC):
    """Orders the remaining candidate set ``S_R`` during the search."""

    #: Short name used in algorithm labels ("qkc", "vkc", "vkc-deg").
    name: str = "abstract"
    #: Whether :meth:`reorder` actually changes the order.  When False the
    #: solver skips re-sorting entirely (ordering is preserved by the
    #: filtering steps, which keep relative order).
    resorts: bool = True

    @abc.abstractmethod
    def initial_order(self, candidates: list[int], context: CoverageContext) -> list[int]:
        """Return *candidates* ordered for the root of the search tree."""

    def reorder(
        self, candidates: list[int], covered_mask: int, context: CoverageContext
    ) -> list[int]:
        """Return *candidates* ordered for a node whose intermediate group
        covers *covered_mask*.  Default: keep the incoming order."""
        return candidates

    def batch_sort_spec(self) -> Optional[tuple]:
        """Recipe for the vectorized ordering twin, or ``None`` to opt out.

        The batched solver core (:mod:`repro.kernels.solve`) replicates
        a strategy's sort as one ``np.lexsort`` when this returns
        ``(kind, degree_sign, degrees)``; ``kind`` names which built-in
        scalar sort must be reproduced bit for bit.  The default
        ``None`` keeps custom strategies on the scalar path — their
        ``reorder`` is the only source of truth for their order.
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class QKCOrdering(OrderingStrategy):
    """Static ordering by query keyword coverage, computed once.

    The paper discusses this as the cheap alternative to VKC sorting:
    "we only need to calculate query keyword coverage once for each
    vertex and only need sorting once", at the cost of weaker early
    solutions and weaker pruning.  Evaluated as KTG-QKC-NLRNL in
    Figure 3.
    """

    name = "qkc"
    resorts = False

    def initial_order(self, candidates: list[int], context: CoverageContext) -> list[int]:
        masks = context.masks
        return sorted(candidates, key=lambda v: -masks[v].bit_count())

    def batch_sort_spec(self) -> Optional[tuple]:
        return ("qkc", 0, None)


class VKCOrdering(OrderingStrategy):
    """Re-sort by valid keyword coverage after every member selection.

    This is the ordering of Algorithm 1 (KTG-VKC): the candidate that
    would add the most *uncovered* query keywords comes first, so a
    high-coverage feasible group is formed as early as possible and the
    keyword-pruning threshold rises quickly.
    """

    name = "vkc"

    def initial_order(self, candidates: list[int], context: CoverageContext) -> list[int]:
        return self.reorder(candidates, 0, context)

    def reorder(
        self, candidates: list[int], covered_mask: int, context: CoverageContext
    ) -> list[int]:
        masks = context.masks
        uncovered = ~covered_mask
        return sorted(candidates, key=lambda v: -(masks[v] & uncovered).bit_count())

    def batch_sort_spec(self) -> Optional[tuple]:
        return ("vkc", 0, None)


class VKCDegreeOrdering(OrderingStrategy):
    """VKC ordering with vertex degree as the tie-break (Section IV-B).

    Parameters
    ----------
    degrees:
        Per-vertex degree table (indexed by vertex id), computed once —
        "the degree of a vertex does not change as the procedure
        proceeds, so the computational overhead is small".
    degree_order:
        ``"ascending"`` (default, the paper's motivation: low-degree
        vertices have fewer k-line conflicts, so feasible groups form
        earlier) or ``"descending"`` (the literal reading of one
        sentence in Section IV-B; measured in the ablation bench).
    """

    name = "vkc-deg"

    def __init__(
        self,
        degrees: list[int],
        degree_order: Literal["ascending", "descending"] = "ascending",
    ) -> None:
        if degree_order not in ("ascending", "descending"):
            raise ValueError(
                f"degree_order must be 'ascending' or 'descending', got {degree_order!r}"
            )
        self._degrees = degrees
        self._degree_sign = 1 if degree_order == "ascending" else -1
        self.degree_order = degree_order

    def initial_order(self, candidates: list[int], context: CoverageContext) -> list[int]:
        return self.reorder(candidates, 0, context)

    def reorder(
        self, candidates: list[int], covered_mask: int, context: CoverageContext
    ) -> list[int]:
        masks = context.masks
        degrees = self._degrees
        sign = self._degree_sign
        uncovered = ~covered_mask
        # Single-int composite key: VKC dominates (shifted above any
        # realistic degree), signed degree breaks ties.  One int compare
        # per element is measurably cheaper than tuple keys in this hot
        # path.
        return sorted(
            candidates,
            key=lambda v: (
                -((masks[v] & uncovered).bit_count() << 32) + sign * degrees[v]
            ),
        )

    def batch_sort_spec(self) -> Optional[tuple]:
        # The composite int key above orders exactly like the pair
        # (-gain, sign * degree) because |sign * degree| < 2**31; the
        # batched twin lexsorts that pair (see repro.kernels.solve).
        return ("vkc-deg", self._degree_sign, self._degrees)

    def __repr__(self) -> str:
        return f"VKCDegreeOrdering(degree_order={self.degree_order!r})"


def strategy_by_name(name: str, graph=None, **options) -> OrderingStrategy:
    """Instantiate an ordering strategy from its short name.

    ``"vkc-deg"`` needs the graph (for the degree table); the other two
    do not.  Extra keyword options are forwarded to the constructor.
    """
    normalized = name.lower().replace("_", "-")
    if normalized == "qkc":
        return QKCOrdering()
    if normalized == "vkc":
        return VKCOrdering()
    if normalized in ("vkc-deg", "vkcdeg", "deg"):
        if graph is None:
            raise ValueError("the 'vkc-deg' strategy requires the graph argument")
        return VKCDegreeOrdering(graph.degrees(), **options)
    raise ValueError(f"unknown ordering strategy {name!r}")
