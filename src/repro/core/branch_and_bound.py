"""The branch-and-bound KTG solver (Algorithm 1 and its variants).

One engine implements all three exact algorithms of the paper; they are
obtained by plugging in an ordering strategy and a distance oracle:

===================  =====================  ======================
Paper name           strategy               oracle
===================  =====================  ======================
KTG-QKC-NLRNL        ``QKCOrdering``        ``NLRNLIndex``
KTG-VKC-NL           ``VKCOrdering``        ``NLIndex``
KTG-VKC-NLRNL        ``VKCOrdering``        ``NLRNLIndex``
KTG-VKC-DEG-NLRNL    ``VKCDegreeOrdering``  ``NLRNLIndex``
===================  =====================  ======================

The search maintains the intermediate group ``S_I`` (as a covered-keyword
mask plus member list) and the ordered remaining candidate set ``S_R``.
At each node it tries each candidate in order; choosing candidate ``v``
k-line-filters the candidates after ``v`` against ``v`` (Theorem 3),
re-orders them per the strategy, and recurses.  Keyword pruning
(Theorem 2) cuts branches whose coverage upper bound cannot beat the
current top-N threshold ``C_max``; under VKC ordering the candidate list
is VKC-sorted, so the bound is read off the list head in O(p).

Both rules can be disabled (``keyword_pruning=False`` /
``kline_filtering=False``) for the pruning ablation; with filtering off
the solver falls back to checking all pairwise distances when a group
reaches size ``p``, which preserves exactness.

On the numpy kernel backend the expansion primitives themselves run
frontier-at-a-time: candidate scoring, re-sorting, k-line elimination
and the admissible bounds are computed over packed arrays by
:mod:`repro.kernels.solve`, node-by-node results staying bit-identical
to the scalar path (same groups, same :class:`SearchStats`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.coverage import CoverageContext
from repro.core.csr import validate_graph_layout
from repro.core.errors import IndexBuildError
from repro.core.pruning import keyword_prune_decision
from repro.core.query import KTGQuery
from repro.core.results import Group, TopNPool
from repro.core.strategies import OrderingStrategy, VKCOrdering
from repro.index.base import DistanceOracle, GraphLike
from repro.index.bfs import BFSOracle

if TYPE_CHECKING:  # hooks are duck-typed at runtime (no repro.obs import)
    from repro.kernels.engine import BallBitsetEngine
    from repro.kernels.solve import NodeBatch, SolveBatch
    from repro.obs.hooks import SolverHooks

__all__ = ["SearchStats", "KTGResult", "BranchAndBoundSolver"]


class _BudgetExhausted(Exception):
    """Internal signal: a node/time budget stopped the search."""


@dataclass
class SearchStats:
    """Instrumentation for one solver run.

    ``nodes_expanded`` counts search-tree nodes entered;
    ``keyword_prunes`` counts branches cut by Theorem 2;
    ``kline_removed`` counts candidates dropped by Theorem 3;
    ``first_feasible_node`` records how many nodes were expanded before
    the first feasible group was found (the quantity the VKC-DEG
    ordering is designed to minimise).

    Every entered node is classified exactly once: it either recursed
    into children (``nodes_interior``), ran the leaf completion scan
    (``nodes_completed``), had fewer candidates than open slots
    (``nodes_exhausted``) or was cut by keyword pruning
    (``node_prunes``).  On an unbudgeted run::

        nodes_expanded == nodes_interior + nodes_completed
                          + nodes_exhausted + node_prunes

    (a budget trip leaves the last entered node unclassified).
    ``keyword_prunes`` splits as ``node_prunes + leaf_prunes`` — leaf
    prunes are the early breaks of the VKC-sorted completion scan —
    and ``union_prunes`` counts node prunes where the union-of-masks
    bound was the strictly tighter rule.
    """

    nodes_expanded: int = 0
    feasible_groups: int = 0
    keyword_prunes: int = 0
    kline_removed: int = 0
    offers_accepted: int = 0
    elapsed_seconds: float = 0.0
    first_feasible_node: Optional[int] = None
    #: True when a node/time budget stopped the search early; the result
    #: is then the best found so far (anytime behaviour), not certified
    #: optimal.
    budget_exhausted: bool = False
    nodes_interior: int = 0
    nodes_completed: int = 0
    nodes_exhausted: int = 0
    node_prunes: int = 0
    leaf_prunes: int = 0
    union_prunes: int = 0


@dataclass(frozen=True)
class KTGResult:
    """Outcome of one KTG query: the top-N groups plus instrumentation."""

    query: KTGQuery
    algorithm: str
    groups: tuple[Group, ...]
    stats: SearchStats = field(compare=False, default_factory=SearchStats)

    @property
    def best_coverage(self) -> float:
        """Coverage of the best group (0.0 when no group was found)."""
        return self.groups[0].coverage if self.groups else 0.0

    @property
    def is_exact(self) -> bool:
        """Whether the search ran to completion (certified optimum)."""
        return not self.stats.budget_exhausted

    def member_sets(self) -> list[tuple[int, ...]]:
        """Member tuples of the result groups, best first."""
        return [group.members for group in self.groups]

    def __str__(self) -> str:
        lines = [f"{self.algorithm} for {self.query.describe()}:"]
        lines.extend(f"  {rank}. {group}" for rank, group in enumerate(self.groups, 1))
        if not self.groups:
            lines.append("  (no feasible group)")
        return "\n".join(lines)


class BranchAndBoundSolver:
    """Exact top-N KTG solver parameterised by strategy and oracle.

    Parameters
    ----------
    graph:
        The attributed social network.
    oracle:
        Distance oracle for k-line checks; defaults to a fresh
        :class:`BFSOracle` (no precomputation).
    strategy:
        Candidate ordering; defaults to :class:`VKCOrdering`
        (KTG-VKC of Algorithm 1).
    keyword_pruning:
        Apply Theorem 2 branch cutting (default on).
    kline_filtering:
        Apply Theorem 3 incremental candidate filtering (default on).
        When off, tenuity is verified pairwise on complete groups.
    use_union_bound:
        Tighten the Theorem 2 bound with the union-of-masks bound
        (library extension; see :mod:`repro.core.pruning`).
    node_budget / time_budget:
        Optional anytime limits (search-tree nodes / wall seconds).  The
        problem is NP-hard, so production callers cap worst-case cost;
        when a budget trips, the best groups found so far are returned
        and ``result.is_exact`` is False.
    distance_engine:
        ``"oracle"`` (default) answers k-line filtering with per-call
        oracle probes; ``"bitset"`` routes it through a
        :class:`repro.kernels.BallBitsetEngine` — cached k-hop ball
        bitsets with whole-mask filtering.  Results are bit-identical
        either way (the kernel is a view over the same oracle).
    kernel:
        Optional prebuilt ball-bitset engine (implies the bitset
        engine).  Pass one to share its ball cache across solvers —
        clones in a parallel fleet, or queries served by one
        :class:`repro.service.QueryService`.
    graph_layout:
        ``"adjacency"`` (default) keeps every traversal on the mutable
        ``list[set[int]]`` adjacency; ``"csr"`` routes the default
        BFS oracle and a lazily-built bitset kernel over the graph's
        flat CSR snapshot arrays (see :mod:`repro.core.csr`).  Groups
        and :class:`SearchStats` are bit-identical across layouts —
        only traversal speed (and process fan-out cost, see
        :mod:`repro.core.parallel`) changes.  An explicitly supplied
        *oracle*/*kernel* keeps whatever layout it was built with.
    kernel_backend:
        Vectorization backend for a lazily-built bitset kernel:
        ``"auto"`` (default) uses the numpy kernels from
        :mod:`repro.kernels.vec` when numpy is importable, ``"numpy"``
        forces them, ``"python"`` forces the scalar kernels.  On the
        numpy backend the solver additionally batches its own expansion
        primitives — frontier-wide scoring, lexsort re-ordering, bulk
        k-line elimination and prefix-OR bounds via
        :mod:`repro.kernels.solve` — for the built-in ordering
        strategies.  Groups and :class:`SearchStats` are bit-identical
        across backends.  An explicitly supplied *kernel* keeps its own
        backend.

    Examples
    --------
    >>> g = AttributedGraph(4, [(0, 1)], {0: ["a"], 1: ["b"], 2: ["a", "b"], 3: ["b"]})
    >>> solver = BranchAndBoundSolver(g)
    >>> result = solver.solve(KTGQuery(keywords=("a", "b"), group_size=2, tenuity=1, top_n=1))
    >>> result.groups[0].coverage
    1.0
    """

    def __init__(
        self,
        graph: GraphLike,
        oracle: Optional[DistanceOracle] = None,
        strategy: Optional[OrderingStrategy] = None,
        keyword_pruning: bool = True,
        kline_filtering: bool = True,
        use_union_bound: bool = False,
        node_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
        distance_engine: str = "oracle",
        kernel: Optional["BallBitsetEngine"] = None,
        graph_layout: str = "adjacency",
        kernel_backend: str = "auto",
    ) -> None:
        if node_budget is not None and node_budget < 1:
            raise ValueError(f"node_budget must be positive, got {node_budget}")
        if time_budget is not None and time_budget <= 0:
            raise ValueError(f"time_budget must be positive, got {time_budget}")
        self.graph = graph
        self.graph_layout = validate_graph_layout(graph_layout)
        self.kernel_backend = kernel_backend
        self.oracle = (
            oracle
            if oracle is not None
            else BFSOracle(graph, graph_layout=graph_layout)
        )
        self.strategy = strategy if strategy is not None else VKCOrdering()
        self.keyword_pruning = keyword_pruning
        self.kline_filtering = kline_filtering
        self.use_union_bound = use_union_bound
        self.node_budget = node_budget
        self.time_budget = time_budget
        if kernel is None and distance_engine == "oracle":
            self.kernel: Optional["BallBitsetEngine"] = None
            if kernel_backend != "auto":
                # Still validate the string so typos fail loudly on the
                # oracle path too (lazy import, same rationale as below).
                from repro.kernels.vec import validate_kernel_backend

                validate_kernel_backend(kernel_backend)
        else:
            # Lazy import: repro.kernels pulls in repro.obs, which this
            # module otherwise avoids at runtime (hooks are duck-typed).
            from repro.kernels.engine import resolve_distance_engine

            self.kernel = resolve_distance_engine(
                distance_engine, self.oracle, kernel, graph_layout, kernel_backend
            )
        self.distance_engine = "bitset" if self.kernel is not None else "oracle"
        self._deadline: Optional[float] = None
        self._hooks: Optional["SolverHooks"] = None
        # Strong ref to the most recent coverage context: keeps the
        # query-object memo (KTGQuery.cached_context) alive between
        # solves of the same query without pinning contexts globally.
        self._last_context: Optional[CoverageContext] = None
        # (context, SolveBatch-or-None) pair for the batched expansion
        # core; identity-keyed so repeat solves of one context reuse it.
        self._batch_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    @property
    def algorithm_name(self) -> str:
        """Paper-style label, e.g. ``KTG-VKC-DEG-NLRNL``."""
        strategy_part = self.strategy.name.upper()
        return f"KTG-{strategy_part}-{self.oracle.name.upper()}"

    # ------------------------------------------------------------------
    def solve(
        self,
        query: KTGQuery,
        candidates: Optional[Sequence[int]] = None,
        hooks: Optional["SolverHooks"] = None,
    ) -> KTGResult:
        """Answer *query*, optionally restricted to a candidate subset.

        The *candidates* override exists for DKTG-Greedy, which re-runs
        the search with already-used members removed.  Candidates are
        still required to cover at least one query keyword.

        *hooks* attaches a :class:`repro.obs.hooks.SolverHooks`
        subscriber for this solve only; with the default ``None`` every
        event site is a single ``is None`` check and nothing is
        allocated.
        """
        if self.oracle.is_stale():
            raise IndexBuildError(
                "the distance oracle was built on an older version of the "
                "graph; call oracle.rebuild() (or oracle.insert_edge/"
                "delete_edge for incremental indexes) before solving"
            )
        stats = SearchStats()
        started = time.perf_counter()

        context = query.cached_context(self.graph)
        self._last_context = context
        pool = TopNPool(query.top_n)

        initial = self._initial_candidates(query, context, candidates, stats)
        initial = self.strategy.initial_order(initial, context)

        self._deadline = (
            started + self.time_budget if self.time_budget is not None else None
        )
        self._hooks = hooks
        if hooks is not None:
            hooks.search_started(query, tuple(initial))
        try:
            self._search(
                members=[],
                covered_mask=0,
                remaining=initial,
                query=query,
                context=context,
                pool=pool,
                stats=stats,
            )
        except _BudgetExhausted:
            stats.budget_exhausted = True
        finally:
            self._hooks = None

        stats.elapsed_seconds = time.perf_counter() - started
        if hooks is not None:
            hooks.search_finished(stats)
        return KTGResult(
            query=query,
            algorithm=self.algorithm_name,
            groups=tuple(pool.best()),
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _initial_candidates(
        self,
        query: KTGQuery,
        context: CoverageContext,
        candidates: Optional[Sequence[int]],
        stats: SearchStats,
    ) -> list[int]:
        """Qualified users: cover >=1 query keyword, and (for the
        multi-query-vertex extension) lie farther than k from every
        anchor."""
        if candidates is None:
            qualified = context.qualified_vertices()
        else:
            masks = context.masks
            qualified = [v for v in candidates if masks[v]]
        kernel = self.kernel
        if kernel is not None and query.excluded_anchors:
            # All anchors' blocked balls fold into one exclusion mask;
            # one subtraction removes every familiar candidate.
            before = len(qualified)
            excluded = kernel.exclusion_mask(query.excluded_anchors, query.tenuity)
            removed = kernel.decode(kernel.encode(qualified) & excluded)
            if removed:
                qualified = [v for v in qualified if v not in removed]
            stats.kline_removed += before - len(qualified)
            return qualified
        for anchor in query.excluded_anchors:
            before = len(qualified)
            qualified = self.oracle.filter_candidates(qualified, anchor, query.tenuity)
            qualified = [v for v in qualified if v != anchor]
            stats.kline_removed += before - len(qualified)
        return qualified

    def _solve_batch(self, context: CoverageContext) -> Optional["SolveBatch"]:
        """The batched expansion core for *context*, or ``None``.

        Built once per (solver, context) pair and cached by context
        identity; ``None`` is cached too (python backend, opted-out
        strategy), so the per-node cost is one tuple identity check.
        """
        cache = self._batch_cache
        if cache is not None and cache[0] is context:
            return cache[1]
        from repro.kernels.solve import SolveBatch

        batch = SolveBatch.for_solver(self, context)
        self._batch_cache = (context, batch)
        return batch

    def _search(
        self,
        members: list[int],
        covered_mask: int,
        remaining: list[int],
        query: KTGQuery,
        context: CoverageContext,
        pool: TopNPool,
        stats: SearchStats,
        remaining_mask: Optional[int] = None,
        node_batch: Optional["NodeBatch"] = None,
    ) -> None:
        stats.nodes_expanded += 1
        hooks = self._hooks
        slots = query.group_size - len(members)
        if hooks is not None:
            hooks.node_entered(tuple(members), slots, len(remaining))
        if self.node_budget is not None and stats.nodes_expanded > self.node_budget:
            if hooks is not None:
                hooks.budget_tripped("nodes", tuple(members))
            raise _BudgetExhausted
        # Wall-clock checks are amortised: perf_counter every 256 nodes.
        if (
            self._deadline is not None
            and stats.nodes_expanded % 256 == 0
            and time.perf_counter() > self._deadline
        ):
            if hooks is not None:
                hooks.budget_tripped("time", tuple(members))
            raise _BudgetExhausted
        if len(remaining) < slots:
            stats.nodes_exhausted += 1
            if hooks is not None:
                hooks.node_exhausted(tuple(members))
            return

        # Frontier-at-a-time expansion: pack the candidate list once and
        # run scoring / elimination / bounds over arrays.  Children
        # inherit views of the parent's arrays; below the width cutoff
        # the node runs the (bit-identical) scalar path instead.
        batch = self._solve_batch(context) if self.kernel is not None else None
        node = node_batch
        if batch is not None:
            if len(remaining) < batch.min_candidates:
                node = None
            elif node is None:
                node = batch.make_node(remaining, covered_mask)
        else:
            node = None

        if self.keyword_pruning:
            if node is not None:
                bound, rule = batch.prune_decision(covered_mask, node, slots)
            else:
                bound, rule = keyword_prune_decision(
                    covered_mask,
                    remaining,
                    slots,
                    context,
                    presorted_by_vkc=self.strategy.resorts,
                    use_union_bound=self.use_union_bound,
                )
            if bound <= pool.threshold:
                stats.keyword_prunes += 1
                stats.node_prunes += 1
                if rule == "union":
                    stats.union_prunes += 1
                if hooks is not None:
                    hooks.node_pruned(tuple(members), rule, bound, pool.threshold)
                return

        masks = context.masks
        if slots == 1:
            stats.nodes_completed += 1
            self._complete_groups(
                members, covered_mask, remaining, query, context, pool, stats, node
            )
            return

        stats.nodes_interior += 1
        kernel = self.kernel
        tail_mask = 0
        if kernel is not None and self.kline_filtering and node is None:
            # The tail bitset is threaded through the recursion: it is
            # encoded once per node (or inherited from the parent's
            # filter) and shrunk per iteration, so each k-line filter is
            # whole-mask arithmetic instead of a per-candidate loop.
            # (A batched node replaces it with array keep-vectors.)
            tail_mask = (
                remaining_mask if remaining_mask is not None
                else kernel.encode(remaining)
            )
        for position, vertex in enumerate(remaining):
            tail_len = len(remaining) - position - 1
            if tail_len < slots - 1:
                break
            new_mask = covered_mask | masks[vertex]
            rest_mask: Optional[int] = None
            child: Optional["NodeBatch"] = None
            if node is not None and self.kline_filtering:
                # Bulk Theorem 3: one gather over the member's ball
                # bytes answers the whole tail; survivors == the scalar
                # path's rest_mask popcount.
                keep, survivors = batch.eliminate(node, position, vertex, query.tenuity)
                stats.kline_removed += tail_len - survivors
                if hooks is not None:
                    hooks.candidates_filtered(vertex, tail_len, survivors)
                if survivors < slots - 1:
                    members.append(vertex)
                    self._expand_exhausted(members, slots - 1, survivors, stats)
                    members.pop()
                    continue
                if survivors == tail_len:
                    rest = remaining[position + 1 :]
                    child = batch.child_tail(node, position, new_mask == covered_mask)
                else:
                    # The scalar list is materialised lazily below: when
                    # a reorder follows it returns the permuted list
                    # itself and the pre-reorder list would be dead work.
                    rest = None
                    child = batch.child_after_elimination(
                        node, position, keep, new_mask == covered_mask
                    )
            elif self.kline_filtering and kernel is not None:
                # Mask-first filtering: compute the surviving bitset and
                # prune on its popcount before paying the O(|tail|) list
                # rebuild.  When fewer candidates survive than slots
                # remain, the child could only exhaust — replay its
                # bookkeeping and move on.  On dense graphs this skips
                # the rebuild for most interior expansions.
                tail_mask &= ~(1 << vertex)
                rest_mask = kernel.filter_mask(tail_mask, vertex, query.tenuity)
                survivors = rest_mask.bit_count()
                stats.kline_removed += tail_len - survivors
                if hooks is not None:
                    hooks.candidates_filtered(vertex, tail_len, survivors)
                if survivors < slots - 1:
                    members.append(vertex)
                    self._expand_exhausted(members, slots - 1, survivors, stats)
                    members.pop()
                    continue
                rest = remaining[position + 1 :]
                if survivors != tail_len:
                    rest = kernel.select(rest, tail_mask, rest_mask)
            elif self.kline_filtering:
                rest = remaining[position + 1 :]
                rest = self.oracle.filter_candidates(rest, vertex, query.tenuity)
                stats.kline_removed += tail_len - len(rest)
                if hooks is not None:
                    hooks.candidates_filtered(vertex, tail_len, len(rest))
            else:
                rest = remaining[position + 1 :]
                if node is not None:
                    child = batch.child_tail(node, position, new_mask == covered_mask)
            # Re-sorting is only needed when the covered set actually
            # changed: VKC values are a function of the covered mask, and
            # filtering preserves relative order.
            if self.strategy.resorts and new_mask != covered_mask:
                if child is not None:
                    rest, child = batch.reorder(child, new_mask)
                else:
                    rest = self.strategy.reorder(rest, new_mask, context)
            if rest is None:
                rest = child.ids.tolist()
            members.append(vertex)
            self._search(
                members, new_mask, rest, query, context, pool, stats, rest_mask, child
            )
            members.pop()

    def _expand_exhausted(
        self,
        members: list[int],
        slots: int,
        count: int,
        stats: SearchStats,
    ) -> None:
        """Stats- and hook-faithful replay of a child :meth:`_search`
        that would exhaust immediately (*count* candidates for *slots*
        open seats), letting the caller skip materialising the child's
        candidate list.  Must mirror the ``_search`` prologue exactly —
        both engines have to produce identical stats and hook streams.
        """
        stats.nodes_expanded += 1
        hooks = self._hooks
        if hooks is not None:
            hooks.node_entered(tuple(members), slots, count)
        if self.node_budget is not None and stats.nodes_expanded > self.node_budget:
            if hooks is not None:
                hooks.budget_tripped("nodes", tuple(members))
            raise _BudgetExhausted
        if (
            self._deadline is not None
            and stats.nodes_expanded % 256 == 0
            and time.perf_counter() > self._deadline
        ):
            if hooks is not None:
                hooks.budget_tripped("time", tuple(members))
            raise _BudgetExhausted
        stats.nodes_exhausted += 1
        if hooks is not None:
            hooks.node_exhausted(tuple(members))

    def _complete_groups(
        self,
        members: list[int],
        covered_mask: int,
        remaining: list[int],
        query: KTGQuery,
        context: CoverageContext,
        pool: TopNPool,
        stats: SearchStats,
        node_batch: Optional["NodeBatch"] = None,
    ) -> None:
        """Leaf level: one slot left, every remaining candidate completes
        a group.  Inlined (no recursion) because leaves dominate the node
        count; under VKC ordering *remaining* is sorted by gain, so the
        scan stops as soon as no completion can enter the pool.  With a
        batched node every candidate's gain arrives precomputed (one
        vectorized sweep) instead of a per-candidate popcount."""
        masks = context.masks
        covered_bits = covered_mask.bit_count()
        query_size = context.query_size
        sorted_by_gain = self.strategy.resorts
        uncovered = ~covered_mask
        gains_list: Optional[list[int]] = None
        if node_batch is not None:
            gains_list = self._solve_batch(context).leaf_gains(node_batch, covered_mask)
        hooks = self._hooks
        kernel = self.kernel
        prefix_tenuous = True
        members_mask = 0
        if not self.kline_filtering:
            # The members' own pairwise tenuity is a property of the
            # prefix, not of the completing candidate: certify it once
            # per leaf node and per candidate check only the p-1 new
            # pairs.  (Before this, every candidate re-probed all
            # p·(p-1)/2 pairs, inflating probes and wall time.)
            prefix_tenuous = self._pairwise_tenuous(members, query.tenuity)
            if kernel is not None:
                members_mask = kernel.encode(members)
        # The node-level deadline check only fires between tree nodes; a
        # single dense leaf can hold tens of thousands of candidates, so
        # the scan itself re-checks the clock (amortised every 256
        # candidates) to bound overshoot past ``time_budget``.
        deadline = self._deadline
        for position, vertex in enumerate(remaining):
            if (
                deadline is not None
                and position & 0xFF == 0xFF
                and time.perf_counter() > deadline
            ):
                if hooks is not None:
                    hooks.budget_tripped("time", tuple(members))
                raise _BudgetExhausted
            gain = (
                gains_list[position]
                if gains_list is not None
                else (masks[vertex] & uncovered).bit_count()
            )
            coverage = (covered_bits + gain) / query_size
            if (
                sorted_by_gain
                and self.keyword_pruning
                and not pool.would_admit(coverage)
            ):
                stats.keyword_prunes += 1
                stats.leaf_prunes += 1
                if hooks is not None:
                    hooks.leaf_visited((*members, vertex), coverage, "pruned")
                break
            if not self.kline_filtering:
                if not prefix_tenuous:
                    tenuous = False
                elif kernel is not None:
                    tenuous = kernel.new_member_tenuous(
                        members_mask, vertex, query.tenuity
                    )
                else:
                    oracle = self.oracle
                    k = query.tenuity
                    tenuous = all(
                        oracle.is_tenuous(vertex, member, k) for member in members
                    )
                if not tenuous:
                    if hooks is not None:
                        hooks.leaf_visited((*members, vertex), coverage, "infeasible")
                    continue
            stats.feasible_groups += 1
            if stats.first_feasible_node is None:
                stats.first_feasible_node = stats.nodes_expanded
            members.append(vertex)
            accepted = pool.offer(members, coverage)
            if accepted:
                stats.offers_accepted += 1
            members.pop()
            if hooks is not None:
                hooks.leaf_visited(
                    (*members, vertex), coverage, "accepted" if accepted else "feasible"
                )

    def _pairwise_tenuous(self, members: Sequence[int], k: int) -> bool:
        """Full pairwise tenuity check, used only when k-line filtering
        is disabled (pruning ablation)."""
        if self.kernel is not None:
            return self.kernel.pairwise_tenuous(members, k)
        oracle = self.oracle
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if not oracle.is_tenuous(u, v, k):
                    return False
        return True

    def _kline_filter(self, candidates: list[int], member: int, k: int) -> list[int]:
        """Engine-dispatched bulk k-line filter (no threaded mask).

        Used where a candidate list is prepared outside the recursion —
        anchor exclusion, the parallel engine's root-branch split."""
        if self.kernel is not None:
            return self.kernel.filter_candidates(candidates, member, k)
        return self.oracle.filter_candidates(candidates, member, k)


def make_solver(
    graph: GraphLike,
    strategy_name: str = "vkc-deg",
    oracle: Optional[DistanceOracle] = None,
    **solver_options,
) -> BranchAndBoundSolver:
    """Convenience factory: build a solver from a strategy short name."""
    from repro.core.strategies import strategy_by_name

    strategy = strategy_by_name(strategy_name, graph)
    return BranchAndBoundSolver(graph, oracle=oracle, strategy=strategy, **solver_options)
