"""Core KTG/DKTG problem model and exact algorithms.

This subpackage holds the paper's primary contribution: the attributed
graph model (Section III), the branch-and-bound exact solvers with
keyword pruning and k-line filtering (Section IV), and the diversified
variant (Section VI).
"""

from repro.core.branch_and_bound import BranchAndBoundSolver, KTGResult, SearchStats, make_solver
from repro.core.bruteforce import BruteForceSolver
from repro.core.coverage import CoverageContext
from repro.core.dktg_exact import DKTGExactSolver
from repro.core.dktg import (
    DKTGGreedySolver,
    DKTGResult,
    dktg_score,
    greedy_approximation_ratio,
    pair_diversity,
    result_diversity,
)
from repro.core.errors import (
    DatasetError,
    GraphConstructionError,
    IndexBuildError,
    IndexUpdateError,
    InfeasibleQueryError,
    QueryValidationError,
    ReproError,
    UnknownVertexError,
    WorkloadError,
)
from repro.core.graph import AttributedGraph, KeywordTable
from repro.core.keyword_index import KeywordIndex
from repro.core.multi_vertex import anchored_query, exclude_familiar
from repro.core.parallel import (
    ParallelBranchAndBoundSolver,
    ParallelKTGResult,
    make_parallel_solver,
)
from repro.core.trace import SearchTrace, TraceNode, TracingSolver
from repro.core.validate import (
    ResultValidationError,
    validate_dktg_result,
    validate_ktg_result,
)
from repro.core.query import DKTGQuery, KTGQuery
from repro.core.results import Group, TopNPool
from repro.core.strategies import (
    OrderingStrategy,
    QKCOrdering,
    VKCDegreeOrdering,
    VKCOrdering,
    strategy_by_name,
)

__all__ = [
    "AttributedGraph",
    "KeywordTable",
    "CoverageContext",
    "KeywordIndex",
    "KTGQuery",
    "DKTGQuery",
    "Group",
    "TopNPool",
    "TracingSolver",
    "SearchTrace",
    "TraceNode",
    "BranchAndBoundSolver",
    "BruteForceSolver",
    "DKTGGreedySolver",
    "DKTGExactSolver",
    "KTGResult",
    "DKTGResult",
    "SearchStats",
    "make_solver",
    "ParallelBranchAndBoundSolver",
    "ParallelKTGResult",
    "make_parallel_solver",
    "OrderingStrategy",
    "QKCOrdering",
    "VKCOrdering",
    "VKCDegreeOrdering",
    "strategy_by_name",
    "pair_diversity",
    "result_diversity",
    "dktg_score",
    "greedy_approximation_ratio",
    "anchored_query",
    "exclude_familiar",
    "ReproError",
    "GraphConstructionError",
    "UnknownVertexError",
    "QueryValidationError",
    "InfeasibleQueryError",
    "IndexBuildError",
    "IndexUpdateError",
    "DatasetError",
    "WorkloadError",
    "ResultValidationError",
    "validate_ktg_result",
    "validate_dktg_result",
]
