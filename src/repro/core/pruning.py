"""Pruning and filtering rules of the branch-and-bound search.

Two rules from Section IV-A:

* **Keyword pruning** (Theorem 2) — an upper bound on the coverage any
  completion of the intermediate group can reach.  If the bound cannot
  beat the current ``C_max`` threshold, the whole branch is pruned.
* **k-line filtering** (Theorem 3) — when a vertex joins the
  intermediate group, every remaining candidate within ``k`` hops of it
  can never co-occur with it in a k-distance group and is dropped.
  The actual distance answering lives in the oracle
  (:meth:`repro.index.base.DistanceOracle.filter_candidates`); this
  module only hosts the bound math so it can be unit-tested in
  isolation.

Both bound variants implemented here are *admissible* (never below the
true best completion coverage), which the property tests check; an
inadmissible bound would silently drop optimal groups.
"""

from __future__ import annotations

import heapq

from repro.core.coverage import CoverageContext

__all__ = [
    "bound_from_vkc_sum",
    "top_vkc_bound",
    "union_bound",
    "keyword_prune_bound",
    "keyword_prune_decision",
]


def bound_from_vkc_sum(covered_mask: int, vkc_sum: int, context: CoverageContext) -> float:
    """Theorem 2's final arithmetic, shared by every bound path.

    Both the scalar bound below and the batched twin
    (:mod:`repro.kernels.solve`) reduce to an integer top-``slots`` VKC
    sum; funnelling the float division through one function guarantees
    equal integer inputs give the identical float — the invariant the
    backend bit-identity property tests rely on.
    """
    return (covered_mask.bit_count() + vkc_sum) / context.query_size


def top_vkc_bound(
    covered_mask: int,
    candidates: list[int],
    slots: int,
    context: CoverageContext,
    presorted_by_vkc: bool = False,
) -> float:
    """Theorem 2's bound: ``QKC(S_I) + sum of the top `slots` VKC values``.

    *covered_mask* is the keyword mask of the intermediate group,
    *candidates* the remaining set ``S_R`` and *slots* the number of
    members still to pick (``p - |S_I|``).  When *presorted_by_vkc* is
    true the first *slots* candidates already carry the largest VKC
    values, so no scan is needed — this is why the paper calls the
    pruning "not time-consuming" under VKC ordering.
    """
    masks = context.masks
    uncovered = ~covered_mask
    if presorted_by_vkc:
        head = candidates[:slots]
        vkc_sum = sum((masks[v] & uncovered).bit_count() for v in head)
    else:
        gains = ((masks[v] & uncovered).bit_count() for v in candidates)
        vkc_sum = sum(heapq.nlargest(slots, gains))
    return bound_from_vkc_sum(covered_mask, vkc_sum, context)


def union_bound(covered_mask: int, candidates: list[int], context: CoverageContext) -> float:
    """A complementary admissible bound: coverage of *everything reachable*.

    The union of all remaining candidate masks caps the branch no matter
    how many slots remain.  It is tighter than :func:`top_vkc_bound`
    when candidate masks overlap heavily (the top-VKC sum double counts
    shared keywords) and looser when a few disjoint high-VKC candidates
    exist.  The solver takes the minimum of both when enabled.
    """
    masks = context.masks
    combined = covered_mask
    for v in candidates:
        combined |= masks[v]
    return combined.bit_count() / context.query_size


def keyword_prune_decision(
    covered_mask: int,
    candidates: list[int],
    slots: int,
    context: CoverageContext,
    presorted_by_vkc: bool = False,
    use_union_bound: bool = False,
) -> tuple[float, str]:
    """The bound the solver compares against ``C_max``, with attribution.

    Returns ``(bound, rule)`` where *rule* is ``"keyword"`` when the
    paper's Theorem 2 top-VKC bound decides, or ``"union"`` when the
    union-of-masks bound is strictly tighter (our extension; measured
    in the pruning ablation bench).  The attribution feeds the
    per-rule prune counters of :mod:`repro.obs`.
    """
    bound = top_vkc_bound(covered_mask, candidates, slots, context, presorted_by_vkc)
    rule = "keyword"
    if use_union_bound:
        alternative = union_bound(covered_mask, candidates, context)
        if alternative < bound:
            return alternative, "union"
    return bound, rule


def keyword_prune_bound(
    covered_mask: int,
    candidates: list[int],
    slots: int,
    context: CoverageContext,
    presorted_by_vkc: bool = False,
    use_union_bound: bool = False,
) -> float:
    """Bound-only convenience wrapper over :func:`keyword_prune_decision`."""
    return keyword_prune_decision(
        covered_mask,
        candidates,
        slots,
        context,
        presorted_by_vkc=presorted_by_vkc,
        use_union_bound=use_union_bound,
    )[0]
