"""Search-tree tracing: render the branch-and-bound exploration.

The paper's Figure 2 draws the KTG-VKC search tree for the running
example — which branches were entered, which were pruned, where the
result groups were found.  :class:`TracingSolver` wraps any
:class:`~repro.core.branch_and_bound.BranchAndBoundSolver` and records
exactly that, then renders it as an indented ASCII tree.

The recording is a :class:`~repro.obs.hooks.SolverHooks` subscriber:
the solver emits one event per search decision and
:class:`_TraceRecorder` rebuilds the tree from the event stream.  The
trace therefore *cannot* drift from the real search — budgets, leaf
deadline checks and every pruning rule are whatever the solver actually
did, because the solver is the only implementation of the search.

Intended uses: debugging ordering strategies ("why was this group found
late?"), teaching material, and the Figure 2 regression test — the
worked example's tree shape is pinned in the test suite.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.core.branch_and_bound import BranchAndBoundSolver, KTGResult, SearchStats
from repro.core.query import KTGQuery
from repro.obs.hooks import SolverHooks

__all__ = ["TraceNode", "SearchTrace", "TracingSolver"]


@dataclass
class TraceNode:
    """One node of the recorded search tree."""

    members: tuple[int, ...]
    # "explored" | "pruned" | "feasible" | "accepted" | "exhausted"
    # | "infeasible" | "budget"
    outcome: str
    coverage: float = 0.0
    children: list["TraceNode"] = field(default_factory=list)
    #: For "pruned": which rule cut the branch ("keyword" | "union");
    #: for "budget": which budget tripped ("nodes" | "time").
    rule: str = ""

    def label(self) -> str:
        inner = ", ".join(f"u{m}" for m in self.members) or "root"
        suffix = ""
        if self.outcome == "pruned":
            suffix = f"  [pruned by {self.rule or 'keyword'} bound]"
        elif self.outcome == "accepted":
            suffix = f"  [result, coverage={self.coverage:.2f}]"
        elif self.outcome == "feasible":
            suffix = f"  [feasible, coverage={self.coverage:.2f}, not admitted]"
        elif self.outcome == "exhausted":
            suffix = "  [dead end: too few candidates]"
        elif self.outcome == "infeasible":
            suffix = "  [infeasible: pairwise tenuity failed]"
        elif self.outcome == "budget":
            suffix = f"  [search stopped: {self.rule or 'time'} budget]"
        return f"{{{inner}}}{suffix}"

    def subtree_size(self) -> int:
        """Number of nodes in this subtree, this node included."""
        return 1 + sum(child.subtree_size() for child in self.children)


@dataclass
class SearchTrace:
    """The full recorded tree plus summary counters."""

    root: TraceNode
    nodes: int = 0
    pruned: int = 0
    accepted: int = 0
    #: The solver's own counters for the traced run (same object as
    #: ``result.stats``) — lets callers cross-check trace totals.
    stats: Optional[SearchStats] = None

    def render(self, max_depth: Optional[int] = None) -> str:
        """Indented ASCII rendering (Figure 2 style).

        With *max_depth*, subtrees below the cut are elided — but never
        silently: an elision line reports how many nodes were hidden.
        """
        lines: list[str] = []

        def walk(node: TraceNode, depth: int) -> None:
            lines.append("  " * depth + node.label())
            if max_depth is not None and depth == max_depth:
                hidden = node.subtree_size() - 1
                if hidden:
                    lines.append(
                        "  " * (depth + 1)
                        + f"... ({hidden} node{'s' if hidden != 1 else ''} "
                        + f"below depth {max_depth} hidden)"
                    )
                return
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)


class _TraceRecorder(SolverHooks):
    """Rebuild the search tree from the solver's hook event stream.

    The solver walks depth-first, so a stack indexed by partial-group
    size is enough: the node for ``members`` is pushed at depth
    ``len(members)`` and its parent is whatever currently sits one level
    up.
    """

    def __init__(self) -> None:
        self.root: Optional[TraceNode] = None
        self.trace: Optional[SearchTrace] = None
        self._stack: list[TraceNode] = []

    # ------------------------------------------------------------------
    def node_entered(self, members, slots, remaining) -> None:
        node = TraceNode(members=members, outcome="explored")
        if self.root is None:
            self.root = node
            self.trace = SearchTrace(root=node)
            self._stack = [node]
        else:
            del self._stack[len(members):]
            self._stack[-1].children.append(node)
            self._stack.append(node)
        self.trace.nodes += 1

    def node_exhausted(self, members) -> None:
        self._stack[-1].outcome = "exhausted"

    def node_pruned(self, members, rule, bound, threshold) -> None:
        node = self._stack[-1]
        node.outcome = "pruned"
        node.rule = rule
        self.trace.pruned += 1

    def leaf_visited(self, members, coverage, outcome) -> None:
        leaf = TraceNode(members=members, outcome=outcome, coverage=coverage)
        self._stack[-1].children.append(leaf)
        if outcome == "pruned":
            self.trace.pruned += 1
        elif outcome == "accepted":
            self.trace.accepted += 1

    def budget_tripped(self, kind, members) -> None:
        node = self._stack[-1]
        node.outcome = "budget"
        node.rule = kind

    def search_finished(self, stats) -> None:
        if self.trace is not None:
            self.trace.stats = stats


class TracingSolver:
    """A solver wrapper that records the search tree while solving.

    The wrapped solver's configuration (strategy, oracle, pruning
    toggles, node/time budgets) is honoured exactly: the wrapped solver
    runs its own search with a recording hook attached, so the trace is
    the actual exploration, not a re-implementation of it.

    Examples
    --------
    >>> from repro.datasets import figure1_example, figure1_query
    >>> graph = figure1_example()
    >>> tracer = TracingSolver(BranchAndBoundSolver(graph))
    >>> result, trace = tracer.solve(figure1_query())
    >>> trace.accepted >= 2
    True
    >>> print(trace.render(max_depth=1))  # doctest: +ELLIPSIS
    {root}...
    """

    def __init__(self, solver: BranchAndBoundSolver) -> None:
        self.solver = solver

    def solve(self, query: KTGQuery) -> tuple[KTGResult, SearchTrace]:
        """Solve *query*, returning the result plus the recorded tree."""
        recorder = _TraceRecorder()
        result = self.solver.solve(query, hooks=recorder)
        trace = recorder.trace
        if trace is None:
            # The search raised before entering the root node; record an
            # empty tree rather than returning None.
            trace = SearchTrace(root=TraceNode(members=(), outcome="explored"))
            trace.stats = result.stats
        return (
            dataclasses.replace(result, algorithm=result.algorithm + "-TRACED"),
            trace,
        )
