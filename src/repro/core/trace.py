"""Search-tree tracing: render the branch-and-bound exploration.

The paper's Figure 2 draws the KTG-VKC search tree for the running
example — which branches were entered, which were pruned, where the
result groups were found.  :class:`TracingSolver` wraps any
:class:`~repro.core.branch_and_bound.BranchAndBoundSolver` and records
exactly that, then renders it as an indented ASCII tree.

Intended uses: debugging ordering strategies ("why was this group found
late?"), teaching material, and the Figure 2 regression test — the
worked example's tree shape is pinned in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.branch_and_bound import BranchAndBoundSolver, KTGResult, SearchStats
from repro.core.coverage import CoverageContext
from repro.core.pruning import keyword_prune_bound
from repro.core.query import KTGQuery
from repro.core.results import TopNPool

__all__ = ["TraceNode", "SearchTrace", "TracingSolver"]


@dataclass
class TraceNode:
    """One node of the recorded search tree."""

    members: tuple[int, ...]
    outcome: str  # "explored" | "pruned" | "feasible" | "accepted" | "exhausted"
    coverage: float = 0.0
    children: list["TraceNode"] = field(default_factory=list)

    def label(self) -> str:
        inner = ", ".join(f"u{m}" for m in self.members) or "root"
        suffix = ""
        if self.outcome == "pruned":
            suffix = "  [pruned by keyword bound]"
        elif self.outcome == "accepted":
            suffix = f"  [result, coverage={self.coverage:.2f}]"
        elif self.outcome == "feasible":
            suffix = f"  [feasible, coverage={self.coverage:.2f}, not admitted]"
        elif self.outcome == "exhausted":
            suffix = "  [dead end: too few candidates]"
        return f"{{{inner}}}{suffix}"


@dataclass
class SearchTrace:
    """The full recorded tree plus summary counters."""

    root: TraceNode
    nodes: int = 0
    pruned: int = 0
    accepted: int = 0

    def render(self, max_depth: Optional[int] = None) -> str:
        """Indented ASCII rendering (Figure 2 style)."""
        lines: list[str] = []

        def walk(node: TraceNode, depth: int) -> None:
            if max_depth is not None and depth > max_depth:
                return
            lines.append("  " * depth + node.label())
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)


class TracingSolver:
    """A solver wrapper that records the search tree while solving.

    The wrapped solver's configuration (strategy, oracle, pruning
    toggles) is honoured; the trace mirrors the solver's actual control
    flow by re-running the identical recursion with recording hooks.

    Examples
    --------
    >>> from repro.datasets import figure1_example, figure1_query
    >>> graph = figure1_example()
    >>> tracer = TracingSolver(BranchAndBoundSolver(graph))
    >>> result, trace = tracer.solve(figure1_query())
    >>> trace.accepted >= 2
    True
    >>> print(trace.render(max_depth=1))  # doctest: +ELLIPSIS
    {root}...
    """

    def __init__(self, solver: BranchAndBoundSolver) -> None:
        self.solver = solver

    def solve(self, query: KTGQuery) -> tuple[KTGResult, SearchTrace]:
        """Solve *query*, returning the result plus the recorded tree."""
        solver = self.solver
        context = CoverageContext(solver.graph, query.keywords)
        pool = TopNPool(query.top_n)
        root = TraceNode(members=(), outcome="explored")
        trace = SearchTrace(root=root)

        candidates = solver._initial_candidates(query, context, None, SearchStats())
        candidates = solver.strategy.initial_order(candidates, context)
        self._walk(root, [], 0, candidates, query, context, pool, trace)

        result = KTGResult(
            query=query,
            algorithm=solver.algorithm_name + "-TRACED",
            groups=tuple(pool.best()),
        )
        return result, trace

    # ------------------------------------------------------------------
    def _walk(
        self,
        node: TraceNode,
        members: list[int],
        covered_mask: int,
        remaining: list[int],
        query: KTGQuery,
        context: CoverageContext,
        pool: TopNPool,
        trace: SearchTrace,
    ) -> None:
        solver = self.solver
        trace.nodes += 1
        slots = query.group_size - len(members)

        if len(remaining) < slots:
            node.outcome = "exhausted"
            return

        if solver.keyword_pruning:
            bound = keyword_prune_bound(
                covered_mask,
                remaining,
                slots,
                context,
                presorted_by_vkc=solver.strategy.resorts,
                use_union_bound=solver.use_union_bound,
            )
            if bound <= pool.threshold:
                node.outcome = "pruned"
                trace.pruned += 1
                return

        masks = context.masks
        for position, vertex in enumerate(remaining):
            rest = remaining[position + 1 :]
            if len(rest) < slots - 1:
                break
            new_mask = covered_mask | masks[vertex]
            child = TraceNode(members=tuple((*members, vertex)), outcome="explored")
            node.children.append(child)

            if slots == 1:
                coverage = context.coverage_of_mask(new_mask)
                child.coverage = coverage
                # Mirror the solver's leaf early-break: under VKC-sorted
                # candidates, once a completion cannot enter the pool no
                # later completion can either.
                if (
                    solver.strategy.resorts
                    and solver.keyword_pruning
                    and not pool.would_admit(coverage)
                ):
                    child.outcome = "pruned"
                    trace.pruned += 1
                    break
                members.append(vertex)
                if pool.offer(members, coverage):
                    child.outcome = "accepted"
                    trace.accepted += 1
                else:
                    child.outcome = "feasible"
                members.pop()
                continue

            if solver.kline_filtering:
                rest = solver.oracle.filter_candidates(rest, vertex, query.tenuity)
            if solver.strategy.resorts and new_mask != covered_mask:
                rest = solver.strategy.reorder(rest, new_mask, context)
            members.append(vertex)
            self._walk(child, members, new_mask, rest, query, context, pool, trace)
            members.pop()
