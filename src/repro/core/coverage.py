"""Query-keyword coverage machinery (Definitions 5, 6 and 8 of the paper).

The query keyword set ``W_Q`` is small (4-8 keywords in the paper's
experiments, Table I), so per-vertex coverage is represented as an integer
bitmask over the *positions* of the query keywords.  With bitmasks,

* ``QKC(v)``  — query keyword coverage of a vertex (Definition 5) — is a
  popcount of ``mask(v)``;
* ``QKC(F)``  — coverage of a group (Definition 6) — is a popcount of the
  OR of member masks;
* ``VKC(v)``  — *valid* keyword coverage w.r.t. an intermediate result
  ``S_I`` (Definition 8) — is a popcount of ``mask(v) & ~covered(S_I)``.

All three are O(1) per vertex, which is what makes the branch-and-bound
inner loop viable in pure Python.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable, Sequence
from typing import Any, Optional

from repro.core.errors import QueryValidationError
from repro.core.graph import AttributedGraph

__all__ = ["CoverageContext", "popcount"]


def popcount(mask: int) -> int:
    """Deprecated alias for :meth:`int.bit_count`.

    .. deprecated::
        Call ``mask.bit_count()`` directly; this wrapper predates the
        minimum-supported Python gaining the builtin and will be removed.
    """
    warnings.warn(
        "repro.core.coverage.popcount is deprecated; use int.bit_count()",
        DeprecationWarning,
        stacklevel=2,
    )
    return mask.bit_count()


class CoverageContext:
    """Precomputed coverage bitmasks for one query keyword set on one graph.

    A context is built once per query and shared by the solver, the
    pruning rules and the result pool.  It freezes:

    * ``query_size`` — ``|W_Q|`` after deduplication;
    * ``full_mask`` — the all-ones mask ``(1 << query_size) - 1``;
    * a per-vertex mask table ``masks`` where bit ``i`` of ``masks[v]``
      is set iff vertex ``v`` carries the *i*-th query keyword.

    Parameters
    ----------
    graph:
        The attributed social network.
    query_keywords:
        Query keyword *labels*.  Labels unknown to the graph's keyword
        table still occupy a bit (they are coverable by nobody), because
        the denominator of QKC is the full ``|W_Q|`` (Definition 5).

    Examples
    --------
    >>> g = AttributedGraph(3, [(0, 1)], {0: ["SN", "QP"], 1: ["DQ"], 2: []})
    >>> ctx = CoverageContext(g, ["SN", "DQ", "GQ"])
    >>> ctx.vertex_coverage(0)  # covers SN only -> 1/3
    0.3333333333333333
    >>> ctx.group_coverage([0, 1])  # SN + DQ -> 2/3
    0.6666666666666666
    """

    __slots__ = (
        "graph",
        "query_labels",
        "query_size",
        "full_mask",
        "masks",
        "_packed",
        "__weakref__",
    )

    def __init__(self, graph: AttributedGraph, query_keywords: Sequence[str]) -> None:
        deduped: list[str] = []
        seen: set[str] = set()
        for label in query_keywords:
            if label not in seen:
                seen.add(label)
                deduped.append(label)
        if not deduped:
            raise QueryValidationError("query keyword set must not be empty")

        self.graph = graph
        self.query_labels: tuple[str, ...] = tuple(deduped)
        self.query_size = len(deduped)
        self.full_mask = (1 << self.query_size) - 1

        table = graph.keyword_table
        # keyword id -> bit position, for query keywords the graph knows.
        bit_of: dict[int, int] = {}
        for position, label in enumerate(deduped):
            keyword_id = table.get(label)
            if keyword_id is not None:
                bit_of[keyword_id] = position

        masks = [0] * graph.num_vertices
        if bit_of:
            for vertex in graph.vertices():
                mask = 0
                for keyword_id in graph.keywords_of(vertex):
                    position = bit_of.get(keyword_id)
                    if position is not None:
                        mask |= 1 << position
                masks[vertex] = mask
        self.masks: list[int] = masks
        self._packed: Optional[tuple[int, Any]] = None

    # ------------------------------------------------------------------
    # Mask-level API (used by the solver hot path)
    # ------------------------------------------------------------------
    def mask_of(self, vertex: int) -> int:
        """Bitmask of query keywords carried by *vertex*."""
        return self.masks[vertex]

    def packed_masks(self, mask_bytes: Optional[int] = None) -> Any:
        """The mask table as one ``(num_vertices, mask_bytes)`` uint8 matrix.

        Row ``v`` is ``masks[v]`` little-endian — the layout the batched
        solver core (:mod:`repro.kernels.solve`) scores against.  Packed
        once per context and cached, so every node family of a solve
        (and every solver clone sharing this context) reuses the same
        matrix instead of re-packing per node.  *mask_bytes* defaults to
        the query's natural width; requires numpy.
        """
        if mask_bytes is None:
            mask_bytes = (self.query_size + 7) >> 3
        cached = self._packed
        if cached is not None and cached[0] == mask_bytes:
            return cached[1]
        from repro.kernels.vec import pack_masks

        matrix = pack_masks(self.masks, mask_bytes)
        # Benign race under the GIL: concurrent packers build identical
        # matrices and the last assignment wins.
        self._packed = (mask_bytes, matrix)
        return matrix

    def union_mask(self, vertices: Iterable[int]) -> int:
        """OR of the member masks of *vertices*."""
        masks = self.masks
        combined = 0
        for vertex in vertices:
            combined |= masks[vertex]
        return combined

    def valid_mask(self, vertex: int, covered_mask: int) -> int:
        """Mask of query keywords *vertex* adds on top of *covered_mask*."""
        return self.masks[vertex] & ~covered_mask

    # ------------------------------------------------------------------
    # Ratio-level API (Definitions 5, 6, 8)
    # ------------------------------------------------------------------
    def vertex_coverage(self, vertex: int) -> float:
        """``QKC(v)`` — Definition 5."""
        return self.masks[vertex].bit_count() / self.query_size

    def group_coverage(self, vertices: Iterable[int]) -> float:
        """``QKC(F)`` — Definition 6."""
        return self.union_mask(vertices).bit_count() / self.query_size

    def valid_coverage(self, vertex: int, intermediate: Iterable[int]) -> float:
        """``VKC(v)`` w.r.t. an intermediate result set — Definition 8."""
        covered = self.union_mask(intermediate)
        return self.valid_mask(vertex, covered).bit_count() / self.query_size

    def coverage_of_mask(self, mask: int) -> float:
        """Coverage ratio for a raw keyword mask."""
        return mask.bit_count() / self.query_size

    # ------------------------------------------------------------------
    # Candidate filtering
    # ------------------------------------------------------------------
    def qualified_vertices(self) -> list[int]:
        """Vertices covering at least one query keyword (``QKC(v) > 0``).

        This is the preprocessing step of Algorithm 1 ("remove the
        unqualified users whose keywords do not contain at least one
        query keyword").
        """
        return [v for v, mask in enumerate(self.masks) if mask]

    def labels_of_mask(self, mask: int) -> list[str]:
        """Decode a mask back to query keyword labels (in query order)."""
        return [
            label
            for position, label in enumerate(self.query_labels)
            if mask >> position & 1
        ]

    def __repr__(self) -> str:
        return (
            f"CoverageContext(|W_Q|={self.query_size}, "
            f"qualified={sum(1 for m in self.masks if m)}/{len(self.masks)})"
        )
