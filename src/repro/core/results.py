"""Result model: groups and the bounded top-N result pool.

:class:`Group` is one feasible k-distance group with its coverage.
:class:`TopNPool` implements the paper's result-set semantics for
Algorithm 1 (``updateRS``): keep at most ``N`` groups; the pruning
threshold ``C_max`` is 0 until the pool is full and the N-th best
coverage afterwards; a new group enters only when its coverage is
*strictly* greater than ``C_max``.

The strictness matters.  In the paper's worked example (Section IV-A)
the first two feasible groups with coverage 0.8 fill the top-2 pool and
later groups that also reach 0.8 "cannot update the result groups" —
ties never displace earlier discoveries.  This makes the output of a
deterministic exploration order itself deterministic, which the tests
rely on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["Group", "TopNPool"]


@dataclass(frozen=True, order=True)
class Group:
    """One result group: a member tuple plus its query-keyword coverage.

    Ordering is by ``(coverage, members)`` so sorted output is stable.
    ``members`` is always a sorted tuple, so two groups with the same
    vertex set compare (and hash) equal regardless of discovery order.
    """

    coverage: float
    members: tuple[int, ...]

    @staticmethod
    def make(members: Iterable[int], coverage: float) -> "Group":
        """Build a group with canonically sorted members."""
        return Group(coverage=coverage, members=tuple(sorted(members)))

    @property
    def size(self) -> int:
        return len(self.members)

    def overlap(self, other: "Group") -> int:
        """Number of shared members with *other* (used by diversity math)."""
        return len(set(self.members) & set(other.members))

    def __str__(self) -> str:
        inner = ", ".join(f"u{m}" for m in self.members)
        return f"{{{inner}}} (coverage={self.coverage:.3f})"


class TopNPool:
    """Bounded pool of the best ``N`` groups found so far.

    Internally a min-heap keyed by ``(coverage, -insertion_sequence)``
    so that the *worst, newest-tied* group is evicted first — eviction
    only ever happens for strictly better coverage, and among
    coverage-tied worst groups the most recent discovery yields, so
    earlier discoveries are never displaced by anything they tie with.

    Examples
    --------
    >>> pool = TopNPool(2)
    >>> pool.threshold
    0.0
    >>> pool.offer((1, 2, 3), 0.8)
    True
    >>> pool.offer((1, 2, 4), 0.8)
    True
    >>> pool.threshold  # pool is full; C_max is now the 2nd-best coverage
    0.8
    >>> pool.offer((5, 6, 7), 0.8)  # tie with C_max: rejected
    False
    >>> pool.offer((5, 6, 7), 1.0)
    True
    >>> [g.coverage for g in pool.best()]
    [1.0, 0.8]
    """

    __slots__ = ("capacity", "_heap", "_members_seen", "_sequence")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        # Heap entries: (coverage, -seq, Group).  The negated sequence
        # breaks coverage ties in favour of keeping *earlier*
        # discoveries: among tied-worst entries the heap root is the
        # newest one, so a strictly better offer evicts the newest tie
        # and earlier discoveries survive ("ties never displace earlier
        # discoveries", Section IV-A).
        self._heap: list[tuple[float, int, Group]] = []
        self._members_seen: set[tuple[int, ...]] = set()
        self._sequence = itertools.count()

    # ------------------------------------------------------------------
    @property
    def threshold(self) -> float:
        """``C_max``: 0.0 until full, then the N-th best coverage."""
        if len(self._heap) < self.capacity:
            return 0.0
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def is_full(self) -> bool:
        return len(self._heap) >= self.capacity

    # ------------------------------------------------------------------
    def offer(self, members: Iterable[int], coverage: float) -> bool:
        """Try to admit a feasible group; return whether it was admitted.

        Duplicate member sets are rejected regardless of coverage (a
        branch-and-bound tree can reach the same set along one path only,
        but greedy callers re-run searches and may re-surface groups).
        """
        group = Group.make(members, coverage)
        if group.members in self._members_seen:
            return False
        if not self.is_full():
            heapq.heappush(self._heap, (coverage, -next(self._sequence), group))
            self._members_seen.add(group.members)
            return True
        worst_coverage, _, worst_group = self._heap[0]
        if coverage <= worst_coverage:
            return False
        heapq.heapreplace(self._heap, (coverage, -next(self._sequence), group))
        self._members_seen.discard(worst_group.members)
        self._members_seen.add(group.members)
        return True

    def would_admit(self, coverage: float) -> bool:
        """Whether a group at *coverage* could currently enter the pool."""
        return not self.is_full() or coverage > self._heap[0][0]

    def best(self) -> list[Group]:
        """Return pool contents sorted by coverage descending.

        Ties are broken by discovery order (earlier first), then members.
        """
        entries = sorted(self._heap, key=lambda item: (-item[0], -item[1]))
        return [group for _, _, group in entries]

    def best_coverage(self) -> Optional[float]:
        """Coverage of the single best group, or ``None`` if empty."""
        if not self._heap:
            return None
        return max(coverage for coverage, _, _ in self._heap)

    def contains_members(self, members: Iterable[int]) -> bool:
        """Whether a group with exactly these members is pooled."""
        return tuple(sorted(members)) in self._members_seen

    def member_union(self) -> set[int]:
        """Union of all member ids across pooled groups (DKTG-Greedy uses
        this to exclude already-used reviewers)."""
        union: set[int] = set()
        for _, _, group in self._heap:
            union.update(group.members)
        return union

    def __repr__(self) -> str:
        return f"TopNPool({len(self._heap)}/{self.capacity}, C_max={self.threshold:.3f})"
