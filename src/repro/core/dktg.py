"""Diversified KTG: diversity scoring and the DKTG-Greedy algorithm
(Section VI).

Diversity between two groups is the Jaccard distance on their member
sets (Equation 2); the diversity of a result set is the average over all
group pairs (Equation 3); the combined objective weighs the *minimum*
per-group coverage against the diversity (Equation 4):

    score(RG) = gamma * min_{g in RG} QKC(g) + (1 - gamma) * dL(RG)

**DKTG-Greedy** first runs KTG-VKC-DEG restricted to top-1 to get the
group with the highest coverage, then repeatedly removes the members of
already-selected groups from the candidate set and re-runs the top-1
search.  Because selected members can never reappear, consecutive groups
are fully disjoint and the diversity term is maximal (dL = 1); if a
round yields a group with lower coverage than the current ``C_max``,
that coverage simply becomes the new ``C_max`` (strategy (2) of
Section VI-B).  This realises the paper's approximation ratio
``1 - gamma * (|W_Q| - 1) / |W_Q|`` (Section VI-C).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations
from typing import Optional, Sequence

from repro.core.branch_and_bound import BranchAndBoundSolver, SearchStats
from repro.core.graph import AttributedGraph
from repro.core.query import DKTGQuery
from repro.core.results import Group
from repro.core.strategies import VKCDegreeOrdering
from repro.index.base import DistanceOracle

__all__ = [
    "pair_diversity",
    "result_diversity",
    "dktg_score",
    "greedy_approximation_ratio",
    "DKTGResult",
    "DKTGGreedySolver",
]


def pair_diversity(group_a: Sequence[int], group_b: Sequence[int]) -> float:
    """Jaccard distance between two member sets (Equation 2).

    >>> pair_diversity((1, 2, 3), (1, 2, 4))
    0.5
    >>> pair_diversity((1, 2), (3, 4))
    1.0
    """
    set_a = set(group_a)
    set_b = set(group_b)
    union = len(set_a | set_b)
    if union == 0:
        return 0.0
    return (union - len(set_a & set_b)) / union


def result_diversity(groups: Sequence[Sequence[int]]) -> float:
    """Average pairwise Jaccard distance of a result set (Equation 3).

    A result set with fewer than two groups has no pairs; its diversity
    is defined as 1.0 (nothing overlaps) so that Equation 4 never
    penalises small result sets for their size.
    """
    if len(groups) < 2:
        return 1.0
    total = sum(pair_diversity(a, b) for a, b in combinations(groups, 2))
    pairs = len(groups) * (len(groups) - 1) / 2
    return total / pairs


def dktg_score(
    coverages: Sequence[float], groups: Sequence[Sequence[int]], gamma: float
) -> float:
    """Equation 4: ``gamma * min coverage + (1 - gamma) * diversity``.

    An empty result set scores 0.
    """
    if not groups:
        return 0.0
    return gamma * min(coverages) + (1.0 - gamma) * result_diversity(groups)


def greedy_approximation_ratio(query_size: int, gamma: float) -> float:
    """The paper's DKTG-Greedy guarantee: ``1 - gamma*(|W_Q|-1)/|W_Q|``."""
    if query_size < 1:
        raise ValueError(f"query size must be >= 1, got {query_size}")
    return 1.0 - gamma * (query_size - 1) / query_size


@dataclass(frozen=True)
class DKTGResult:
    """Outcome of a DKTG query: groups, diversity and combined score."""

    query: DKTGQuery
    algorithm: str
    groups: tuple[Group, ...]
    diversity: float
    score: float
    stats: SearchStats = field(compare=False, default_factory=SearchStats)

    @property
    def min_coverage(self) -> float:
        return min((g.coverage for g in self.groups), default=0.0)

    def __str__(self) -> str:
        lines = [
            f"{self.algorithm} for {self.query.describe()}:",
            f"  diversity={self.diversity:.3f} score={self.score:.3f}",
        ]
        lines.extend(f"  {rank}. {group}" for rank, group in enumerate(self.groups, 1))
        return "\n".join(lines)


class DKTGGreedySolver:
    """DKTG-Greedy (Section VI-B) on top of KTG-VKC-DEG.

    Parameters
    ----------
    graph:
        The attributed social network.
    oracle:
        Distance oracle shared with the inner KTG searches (the paper
        pairs DKTG-Greedy with the NLRNL index).
    inner_solver:
        Optional pre-configured solver for the per-round top-1 searches;
        defaults to KTG-VKC-DEG with all pruning enabled.
    distance_engine / kernel:
        Forwarded to the default inner solver (ignored when
        *inner_solver* is supplied — configure it directly instead);
        see :class:`BranchAndBoundSolver`.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        oracle: Optional[DistanceOracle] = None,
        inner_solver: Optional[BranchAndBoundSolver] = None,
        distance_engine: str = "oracle",
        kernel=None,
    ) -> None:
        self.graph = graph
        if inner_solver is None:
            inner_solver = BranchAndBoundSolver(
                graph,
                oracle=oracle,
                strategy=VKCDegreeOrdering(graph.degrees()),
                distance_engine=distance_engine,
                kernel=kernel,
            )
        elif oracle is not None and inner_solver.oracle is not oracle:
            raise ValueError("pass either oracle or inner_solver, not conflicting both")
        self.inner_solver = inner_solver

    @property
    def algorithm_name(self) -> str:
        return f"DKTG-GREEDY-{self.inner_solver.oracle.name.upper()}"

    def solve(self, query: DKTGQuery) -> DKTGResult:
        """Answer the DKTG query with the greedy heuristic."""
        started = time.perf_counter()
        totals = SearchStats()

        context = query.cached_context(self.graph)
        available = context.qualified_vertices()
        single = query.with_(top_n=1)
        if not isinstance(single, DKTGQuery):  # pragma: no cover - defensive
            raise TypeError("query.with_ must preserve the query type")
        single_base = single.base_query()

        selected: list[Group] = []
        while len(selected) < query.top_n and len(available) >= query.group_size:
            round_result = self.inner_solver.solve(single_base, candidates=available)
            _merge_stats(totals, round_result.stats)
            if not round_result.groups:
                break
            group = round_result.groups[0]
            selected.append(group)
            used = set(group.members)
            available = [v for v in available if v not in used]

        member_sets = [group.members for group in selected]
        coverages = [group.coverage for group in selected]
        diversity = result_diversity(member_sets)
        score = dktg_score(coverages, member_sets, query.gamma)
        totals.elapsed_seconds = time.perf_counter() - started
        return DKTGResult(
            query=query,
            algorithm=self.algorithm_name,
            groups=tuple(selected),
            diversity=diversity,
            score=score,
            stats=totals,
        )


def _merge_stats(into: SearchStats, other: SearchStats) -> None:
    into.nodes_expanded += other.nodes_expanded
    into.feasible_groups += other.feasible_groups
    into.keyword_prunes += other.keyword_prunes
    into.kline_removed += other.kline_removed
    into.offers_accepted += other.offers_accepted
    # Any budget-truncated inner round degrades the whole greedy answer
    # (the serving layer reports this as a non-exact, anytime result).
    into.budget_exhausted = into.budget_exhausted or other.budget_exhausted
    if into.first_feasible_node is None:
        into.first_feasible_node = other.first_feasible_node
