"""Comparator algorithms from related work.

* TAGQ (Li et al. [18]): average keyword coverage under a k-tenuity cap
  — the Figure 8 comparator.
* MinLine (Li [2]): minimise the number of k-lines — the related-work
  model the paper contrasts its k-distance-group definition against.
"""

from repro.baselines.kline_min import MinLineGroup, MinLineResult, MinLineSolver
from repro.baselines.tagq import TAGQSolver, k_tenuity

__all__ = [
    "TAGQSolver",
    "k_tenuity",
    "MinLineSolver",
    "MinLineResult",
    "MinLineGroup",
]
