"""TAGQ comparator (Li et al. [18], "Querying Tenuous Group in
Attributed Networks") for the effectiveness case study (Section VII-B).

The original TAGQ implementation is not public; the KTG paper describes
its model precisely enough to rebuild the *objective*, which is all the
case study compares:

* TAGQ maximises the **average** query-keyword coverage of the group,
  ``avg QKC(g) = (1/p) * sum_{v in g} QKC(v)`` — so members covering
  zero query keywords can appear whenever the high-coverage vertices run
  out (the "red line" reviewers in Figure 8);
* tenuity is measured by **k-tenuity** — the ratio of member pairs
  within ``k`` hops to all member pairs — and constrained to a maximum
  (the KTG paper notes that any positive k-tenuity admits close pairs;
  with ``max_tenuity=0.0`` the social constraint coincides with KTG's
  k-distance requirement, which matches Figure 8 where TAGQ's groups
  "satisfy the social constraint").

The solver is a small exact branch-and-bound over all vertices (TAGQ
does not require per-member coverage), with an admissible bound on the
average coverage.  It is a *comparator*, not a performance subject — the
case-study graphs are small.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.core.branch_and_bound import KTGResult, SearchStats
from repro.core.coverage import CoverageContext
from repro.core.graph import AttributedGraph
from repro.core.query import KTGQuery
from repro.core.results import TopNPool
from repro.index.base import DistanceOracle
from repro.index.bfs import BFSOracle

__all__ = ["TAGQSolver", "k_tenuity"]


def k_tenuity(graph_or_oracle, members: Sequence[int], k: int) -> float:
    """k-tenuity of a group: fraction of member pairs within ``k`` hops.

    Accepts a :class:`DistanceOracle` (preferred) or an
    :class:`AttributedGraph` (BFS per pair).  A group with fewer than
    two members has k-tenuity 0.
    """
    if isinstance(graph_or_oracle, AttributedGraph):
        oracle: DistanceOracle = BFSOracle(graph_or_oracle)
    else:
        oracle = graph_or_oracle
    members = list(members)
    total_pairs = len(members) * (len(members) - 1) // 2
    if total_pairs == 0:
        return 0.0
    close = sum(
        1
        for i, u in enumerate(members)
        for v in members[i + 1 :]
        if not oracle.is_tenuous(u, v, k)
    )
    return close / total_pairs


class TAGQSolver:
    """Exact solver for the TAGQ model (average coverage, k-tenuity cap).

    Parameters
    ----------
    graph:
        The attributed social network.
    oracle:
        Distance oracle for the k-tenuity constraint.
    max_tenuity:
        Largest admissible k-tenuity.  ``0.0`` (default) forbids any
        close pair; positive values reproduce TAGQ's weaker guarantee —
        e.g. ``1/3`` lets one of three pairs in a triple be neighbours.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        oracle: Optional[DistanceOracle] = None,
        max_tenuity: float = 0.0,
    ) -> None:
        if not 0.0 <= max_tenuity <= 1.0:
            raise ValueError(f"max_tenuity must be within [0, 1], got {max_tenuity}")
        self.graph = graph
        self.oracle = oracle if oracle is not None else BFSOracle(graph)
        self.max_tenuity = max_tenuity

    @property
    def algorithm_name(self) -> str:
        return f"TAGQ-{self.oracle.name.upper()}"

    def solve(self, query: KTGQuery) -> KTGResult:
        """Return the top-N groups under the TAGQ objective.

        The :class:`KTGResult.groups` carry *average* coverage in their
        ``coverage`` field (TAGQ's ranking quantity), so results are
        comparable side by side with KTG output in the case study.
        """
        stats = SearchStats()
        started = time.perf_counter()

        context = CoverageContext(self.graph, query.keywords)
        pool = TopNPool(query.top_n)
        # TAGQ considers every vertex: zero-coverage members are legal.
        # Sort by descending individual coverage so good averages appear
        # early and the bound bites.
        masks = context.masks
        candidates = sorted(
            self.graph.vertices(), key=lambda v: -masks[v].bit_count()
        )
        max_close_pairs = self._max_close_pairs(query.group_size)
        self._grow([], 0, candidates, query, context, pool, stats, max_close_pairs)

        stats.elapsed_seconds = time.perf_counter() - started
        return KTGResult(
            query=query,
            algorithm=self.algorithm_name,
            groups=tuple(pool.best()),
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _max_close_pairs(self, group_size: int) -> int:
        """How many within-k pairs the tenuity cap allows for this size."""
        total_pairs = group_size * (group_size - 1) // 2
        # floor(max_tenuity * total) with float-noise guard.
        return int(self.max_tenuity * total_pairs + 1e-9)

    def _grow(
        self,
        members: list[int],
        close_pairs: int,
        rest: list[int],
        query: KTGQuery,
        context: CoverageContext,
        pool: TopNPool,
        stats: SearchStats,
        max_close_pairs: int,
    ) -> None:
        stats.nodes_expanded += 1
        p = query.group_size
        if len(members) == p:
            stats.feasible_groups += 1
            average = sum(
                context.masks[v].bit_count() for v in members
            ) / (p * context.query_size)
            if pool.offer(members, average):
                stats.offers_accepted += 1
            return

        slots = p - len(members)
        if len(rest) < slots:
            return

        # Bound: current sum + the `slots` largest remaining individual
        # coverages (rest is sorted by individual coverage, and recursion
        # preserves that order), normalised to an average.
        masks = context.masks
        current_sum = sum(masks[v].bit_count() for v in members)
        best_possible = current_sum + sum(masks[v].bit_count() for v in rest[:slots])
        bound = best_possible / (p * context.query_size)
        if bound <= pool.threshold:
            stats.keyword_prunes += 1
            return

        is_tenuous = self.oracle.is_tenuous
        k = query.tenuity
        for position, vertex in enumerate(rest):
            if len(rest) - position < slots:
                break
            new_close = close_pairs + sum(
                1 for member in members if not is_tenuous(vertex, member, k)
            )
            if new_close > max_close_pairs:
                stats.kline_removed += 1
                continue
            members.append(vertex)
            self._grow(
                members,
                new_close,
                rest[position + 1 :],
                query,
                context,
                pool,
                stats,
                max_close_pairs,
            )
            members.pop()
