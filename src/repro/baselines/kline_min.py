"""MinLine comparator: Li [2]'s k-line-minimisation model.

Related work (Section II-A): "The idea of [2] is to minimize the number
of k-lines in a subgroup, while our problem returns the tenuous groups
that do not have any k-line."  To let users compare the two models on
the same graph, this module solves Li's objective exactly for the small
group sizes the paper evaluates:

    among groups of size ``p`` whose members each cover at least one
    query keyword, return the top-N by (fewest k-lines, then highest
    query-keyword coverage).

A KTG result is always a MinLine result with zero k-lines when one
exists; when *no* zero-k-line group exists, KTG returns empty while
MinLine degrades gracefully — exactly the modelling difference the
paper discusses.  The comparison bench and the model-comparison example
exercise both regimes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.branch_and_bound import SearchStats
from repro.core.coverage import CoverageContext
from repro.core.graph import AttributedGraph
from repro.core.query import KTGQuery
from repro.index.base import DistanceOracle
from repro.index.bfs import BFSOracle

__all__ = ["MinLineGroup", "MinLineResult", "MinLineSolver"]


@dataclass(frozen=True, order=True)
class MinLineGroup:
    """A group ranked by (k-lines ascending, coverage descending)."""

    kline_count: int
    negative_coverage: float = field(repr=False)
    members: tuple[int, ...]

    @property
    def coverage(self) -> float:
        return -self.negative_coverage

    def __str__(self) -> str:
        inner = ", ".join(f"u{m}" for m in self.members)
        return (
            f"{{{inner}}} (k-lines={self.kline_count}, "
            f"coverage={self.coverage:.3f})"
        )


@dataclass(frozen=True)
class MinLineResult:
    query: KTGQuery
    algorithm: str
    groups: tuple[MinLineGroup, ...]
    stats: SearchStats = field(compare=False, default_factory=SearchStats)

    @property
    def best_kline_count(self) -> Optional[int]:
        return self.groups[0].kline_count if self.groups else None


class MinLineSolver:
    """Exact top-N solver for Li [2]'s minimise-k-lines objective.

    Branch and bound on the number of k-lines: a partial group's k-line
    count never decreases as members join, so a partial count at or
    above the current N-th best bound is pruned.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        oracle: Optional[DistanceOracle] = None,
    ) -> None:
        self.graph = graph
        self.oracle = oracle if oracle is not None else BFSOracle(graph)

    @property
    def algorithm_name(self) -> str:
        return f"MINLINE-{self.oracle.name.upper()}"

    def solve(self, query: KTGQuery) -> MinLineResult:
        stats = SearchStats()
        started = time.perf_counter()

        context = CoverageContext(self.graph, query.keywords)
        qualified = context.qualified_vertices()
        # Low-degree first: fewer k-lines early, better bounds.
        degrees = self.graph.degrees()
        qualified.sort(key=lambda v: degrees[v])

        best: list[MinLineGroup] = []

        def worst_bound() -> float:
            if len(best) < query.top_n:
                return float("inf")
            return best[-1].kline_count

        def offer(members: Sequence[int], klines: int) -> None:
            coverage = context.group_coverage(members)
            group = MinLineGroup(
                kline_count=klines,
                negative_coverage=-coverage,
                members=tuple(sorted(members)),
            )
            best.append(group)
            best.sort()
            del best[query.top_n :]
            stats.offers_accepted += 1

        def grow(members: list[int], klines: int, rest: list[int]) -> None:
            stats.nodes_expanded += 1
            if len(members) == query.group_size:
                stats.feasible_groups += 1
                offer(members, klines)
                return
            slots = query.group_size - len(members)
            if klines > worst_bound():
                stats.keyword_prunes += 1
                return
            is_tenuous = self.oracle.is_tenuous
            for position, vertex in enumerate(rest):
                if len(rest) - position < slots:
                    break
                added = sum(
                    1
                    for member in members
                    if not is_tenuous(vertex, member, query.tenuity)
                )
                if klines + added > worst_bound():
                    continue
                members.append(vertex)
                grow(members, klines + added, rest[position + 1 :])
                members.pop()

        grow([], 0, qualified)

        stats.elapsed_seconds = time.perf_counter() - started
        return MinLineResult(
            query=query,
            algorithm=self.algorithm_name,
            groups=tuple(best),
            stats=stats,
        )
