"""Module entry point: ``python -m repro`` == the ``ktg`` CLI."""

import sys

from repro.cli.main import main

if __name__ == "__main__":
    sys.exit(main())
