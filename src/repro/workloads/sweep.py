"""Parameter sweeps reproducing the evaluation grid of Table I.

The paper varies one parameter at a time while the rest stay at their
defaults (Table I), runs 100 random queries per setting, and plots mean
latency per algorithm (Figures 3-6).  :func:`run_parameter_sweep` is
that loop; each figure's benchmark is a thin call into it.

Table I ranges are reproduced verbatim.  The paper's bold defaults are
not recoverable from the text dump, so the defaults below pick the
canonical midpoints used throughout the worked examples (``p=3, k=2,
|W_Q|=6, N=3``); EXPERIMENTS.md records this choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.errors import WorkloadError
from repro.core.graph import AttributedGraph
from repro.datasets.keywords import ZipfVocabulary
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.runner import ALGORITHMS, AlgorithmSpec, ExperimentRunner, LatencyReport

__all__ = [
    "PARAMETER_TABLE",
    "DEFAULTS",
    "SweepPoint",
    "SweepResult",
    "run_parameter_sweep",
]

#: Table I — parameter ranges of the paper's evaluation.
PARAMETER_TABLE: dict[str, list[int]] = {
    "group_size": [3, 4, 5, 6, 7],
    "tenuity": [1, 2, 3, 4],
    "keyword_size": [4, 5, 6, 7, 8],
    "top_n": [3, 5, 7, 9, 11],
}

#: Default setting for every parameter not being varied.
DEFAULTS: dict[str, int] = {
    "group_size": 3,
    "tenuity": 2,
    "keyword_size": 6,
    "top_n": 3,
}


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, algorithm) measurement."""

    parameter: str
    value: int
    report: LatencyReport


@dataclass
class SweepResult:
    """All measurements of one sweep, organised for plotting/tabulation."""

    parameter: str
    dataset: str
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, algorithm: str) -> list[tuple[int, float]]:
        """(value, mean latency ms) pairs for one algorithm, value-sorted."""
        pairs = [
            (point.value, point.report.mean_ms)
            for point in self.points
            if point.report.algorithm == algorithm
        ]
        return sorted(pairs)

    def algorithms(self) -> list[str]:
        return sorted({point.report.algorithm for point in self.points})

    def rows(self) -> list[dict]:
        """Flat rows (one per point) for table/CSV rendering."""
        rows = []
        for point in self.points:
            row = point.report.row()
            row[self.parameter] = point.value
            rows.append(row)
        return rows


def run_parameter_sweep(
    graph: AttributedGraph,
    parameter: str,
    vocabulary: Optional[ZipfVocabulary] = None,
    dataset_name: str = "unnamed",
    values: Optional[Sequence[int]] = None,
    algorithms: Optional[Sequence[str | AlgorithmSpec]] = None,
    queries_per_setting: int = 100,
    seed: int = 0,
    overrides: Optional[dict[str, int]] = None,
) -> SweepResult:
    """Vary *parameter* over *values*, fixing the rest at Table I defaults.

    ``overrides`` replaces individual defaults (e.g. a quick bench run
    with ``{"keyword_size": 4}``).  The same workload seed is reused for
    every algorithm at a given value, so algorithms are compared on
    identical query batches — exactly the paper's methodology.
    """
    if parameter not in PARAMETER_TABLE:
        raise WorkloadError(
            f"unknown sweep parameter {parameter!r}; "
            f"expected one of {sorted(PARAMETER_TABLE)}"
        )
    if values is None:
        values = PARAMETER_TABLE[parameter]
    if algorithms is None:
        algorithms = [name for name in ALGORITHMS]

    settings = dict(DEFAULTS)
    if overrides:
        settings.update(overrides)

    generator = WorkloadGenerator(graph, vocabulary, dataset_name=dataset_name)
    runner = ExperimentRunner(graph, dataset_name=dataset_name)
    result = SweepResult(parameter=parameter, dataset=dataset_name)

    for value in values:
        point_settings = dict(settings)
        point_settings[parameter] = value
        workload = generator.generate(
            count=queries_per_setting,
            keyword_size=point_settings["keyword_size"],
            group_size=point_settings["group_size"],
            tenuity=point_settings["tenuity"],
            top_n=point_settings["top_n"],
            seed=seed + value,
        )
        for algorithm in algorithms:
            report = runner.run(algorithm, workload)
            result.points.append(
                SweepPoint(parameter=parameter, value=value, report=report)
            )
    return result
