"""Experiment runner: algorithm registry + latency measurement.

This is the harness behind every latency figure (Figures 3-7).  It
knows the paper's algorithm line-up by name::

    KTG-QKC-NLRNL       query-keyword-coverage ordering, NLRNL index
    KTG-VKC-NL          valid-keyword-coverage ordering, NL index
    KTG-VKC-NLRNL       valid-keyword-coverage ordering, NLRNL index
    KTG-VKC-DEG-NLRNL   VKC + degree tie-break, NLRNL index
    DKTG-GREEDY         greedy diversified search on KTG-VKC-DEG-NLRNL

and runs each over a :class:`repro.workloads.generator.QueryWorkload`,
reporting mean/median/p95 latency plus solver counters.  Index build
time is *excluded* from per-query latency (the paper reports it
separately, Figure 9(b)); oracles are cached per (graph, kind) so a
sweep over p values reuses one index, like the paper's setup.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.core.branch_and_bound import BranchAndBoundSolver, KTGResult
from repro.core.dktg import DKTGGreedySolver, DKTGResult
from repro.core.graph import AttributedGraph
from repro.core.query import DKTGQuery
from repro.core.strategies import QKCOrdering, VKCDegreeOrdering, VKCOrdering
from repro.index.base import DistanceOracle
from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex
from repro.index.pll import PLLIndex
from repro.workloads.generator import QueryWorkload

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "LatencyReport",
    "ExperimentRunner",
    "percentile_nearest_rank",
]


def percentile_nearest_rank(ordered: Sequence[float], fraction: float) -> float:
    """Ceiling nearest-rank percentile of pre-sorted *ordered* samples.

    The nearest-rank definition picks the smallest sample whose rank is
    at least ``fraction * n``, i.e. index ``ceil(fraction * n) - 1``.
    ``int(round(...))`` is *not* equivalent: banker's rounding of the
    half-way cases picks the rank below the percentile for some sample
    sizes (e.g. n=31 at the 95th percentile).
    """
    if not ordered:
        return 0.0
    index = max(0, math.ceil(fraction * len(ordered)) - 1)
    return ordered[min(index, len(ordered) - 1)]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One named algorithm: an ordering choice plus an oracle kind."""

    name: str
    strategy_name: str  # "qkc" | "vkc" | "vkc-deg"
    oracle_kind: str    # "bfs" | "nl" | "nlrnl"
    diversified: bool = False

    def build_oracle(
        self,
        graph: AttributedGraph,
        graph_layout: str = "adjacency",
        kernel_backend: str = "auto",
    ) -> DistanceOracle:
        if self.oracle_kind == "bfs":
            return BFSOracle(graph, graph_layout=graph_layout)
        if self.oracle_kind == "nl":
            # NL is the one oracle whose csr build itself rides the
            # vectorized kernels, so the backend choice reaches it.
            return NLIndex(
                graph, graph_layout=graph_layout, kernel_backend=kernel_backend
            )
        if self.oracle_kind == "nlrnl":
            # NLRNL's incremental-maintenance path rebuilds per-vertex
            # maps against the live adjacency, so its build keeps the
            # set-based kernel regardless of layout.
            return NLRNLIndex(graph)
        if self.oracle_kind == "pll":
            return PLLIndex(graph, graph_layout=graph_layout)
        raise ValueError(f"unknown oracle kind {self.oracle_kind!r}")

    def build_solver(
        self,
        graph: AttributedGraph,
        oracle: DistanceOracle,
        **solver_options,
    ) -> Union[BranchAndBoundSolver, DKTGGreedySolver]:
        """Build the solver; *solver_options* (e.g. ``node_budget``,
        ``time_budget``) pass straight to :class:`BranchAndBoundSolver`
        — the admission-control hook :class:`repro.service.QueryService`
        uses to cap per-query cost."""
        if self.strategy_name == "qkc":
            strategy = QKCOrdering()
        elif self.strategy_name == "vkc":
            strategy = VKCOrdering()
        elif self.strategy_name == "vkc-deg":
            strategy = VKCDegreeOrdering(graph.degrees())
        else:
            raise ValueError(f"unknown strategy {self.strategy_name!r}")
        solver = BranchAndBoundSolver(
            graph, oracle=oracle, strategy=strategy, **solver_options
        )
        if self.diversified:
            return DKTGGreedySolver(graph, inner_solver=solver)
        return solver


#: The paper's evaluated line-up (Section VII-A).
ALGORITHMS: dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        AlgorithmSpec("KTG-QKC-NLRNL", "qkc", "nlrnl"),
        AlgorithmSpec("KTG-VKC-NL", "vkc", "nl"),
        AlgorithmSpec("KTG-VKC-NLRNL", "vkc", "nlrnl"),
        AlgorithmSpec("KTG-VKC-DEG-NLRNL", "vkc-deg", "nlrnl"),
        AlgorithmSpec("DKTG-GREEDY", "vkc-deg", "nlrnl", diversified=True),
    )
}


@dataclass
class LatencyReport:
    """Aggregate of one algorithm over one workload."""

    algorithm: str
    dataset: str
    query_count: int
    latencies_ms: list[float] = field(repr=False, default_factory=list)
    total_nodes_expanded: int = 0
    total_feasible_groups: int = 0
    empty_results: int = 0
    total_keyword_prunes: int = 0
    total_kline_removed: int = 0

    @property
    def mean_ms(self) -> float:
        return statistics.fmean(self.latencies_ms) if self.latencies_ms else 0.0

    @property
    def median_ms(self) -> float:
        return statistics.median(self.latencies_ms) if self.latencies_ms else 0.0

    @property
    def p95_ms(self) -> float:
        return percentile_nearest_rank(sorted(self.latencies_ms), 0.95)

    def row(self) -> dict:
        """Flat dict for table/CSV rendering."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "queries": self.query_count,
            "mean_ms": self.mean_ms,
            "median_ms": self.median_ms,
            "p95_ms": self.p95_ms,
            "nodes": self.total_nodes_expanded,
            "empty": self.empty_results,
            "keyword_prunes": self.total_keyword_prunes,
            "kline_removed": self.total_kline_removed,
        }


class ExperimentRunner:
    """Runs named algorithms over workloads with per-graph oracle caching."""

    def __init__(self, graph: AttributedGraph, dataset_name: str = "unnamed") -> None:
        self.graph = graph
        self.dataset_name = dataset_name
        self._oracles: dict[str, DistanceOracle] = {}

    def oracle_for(self, spec: AlgorithmSpec) -> DistanceOracle:
        """Build (once) and return the oracle a spec needs."""
        oracle = self._oracles.get(spec.oracle_kind)
        if oracle is None or oracle.is_stale():
            oracle = spec.build_oracle(self.graph)
            self._oracles[spec.oracle_kind] = oracle
        return oracle

    def run(
        self,
        algorithm: Union[str, AlgorithmSpec],
        workload: QueryWorkload,
        result_hook: Optional[Callable[[Union[KTGResult, DKTGResult]], None]] = None,
    ) -> LatencyReport:
        """Execute *algorithm* over every query in *workload*.

        *result_hook* receives each per-query result (for effectiveness
        analyses that want more than latency).
        """
        spec = ALGORITHMS[algorithm] if isinstance(algorithm, str) else algorithm
        oracle = self.oracle_for(spec)
        solver = spec.build_solver(self.graph, oracle)
        report = LatencyReport(
            algorithm=spec.name,
            dataset=workload.dataset if workload.dataset != "unnamed" else self.dataset_name,
            query_count=len(workload),
        )
        for query in workload:
            if spec.diversified and not isinstance(query, DKTGQuery):
                query = DKTGQuery(
                    keywords=query.keywords,
                    group_size=query.group_size,
                    tenuity=query.tenuity,
                    top_n=query.top_n,
                    excluded_anchors=query.excluded_anchors,
                )
            started = time.perf_counter()
            result = solver.solve(query)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            report.latencies_ms.append(elapsed_ms)
            report.total_nodes_expanded += result.stats.nodes_expanded
            report.total_feasible_groups += result.stats.feasible_groups
            report.total_keyword_prunes += result.stats.keyword_prunes
            report.total_kline_removed += result.stats.kline_removed
            if not result.groups:
                report.empty_results += 1
            if result_hook is not None:
                result_hook(result)
        return report

    def run_batched(
        self,
        algorithm: Union[str, AlgorithmSpec],
        workload: QueryWorkload,
        *,
        max_workers: int = 4,
        executor: str = "thread",
        parallel: bool = True,
        time_budget: Optional[float] = None,
        node_budget: Optional[int] = None,
        cache_capacity: int = 1024,
        result_hook: Optional[Callable[[Union[KTGResult, DKTGResult]], None]] = None,
    ) -> LatencyReport:
        """Alternate execution path: serve *workload* through a
        :class:`repro.service.QueryService` (parallel workers + result
        cache + admission control) instead of the sequential loop.

        Per-query latencies are serving latencies (cache hits are
        near-zero), so repeated-query workloads report the amortised
        cost a deployment would observe.
        """
        from repro.service import QueryService  # local: avoid import cycle

        spec = ALGORITHMS[algorithm] if isinstance(algorithm, str) else algorithm
        with QueryService(
            self.graph,
            spec,
            oracle=self.oracle_for(spec),
            max_workers=max_workers,
            executor=executor,
            time_budget=time_budget,
            node_budget=node_budget,
            cache_capacity=cache_capacity,
        ) as service:
            served = service.run_batch(workload, parallel=parallel)

        report = LatencyReport(
            algorithm=spec.name,
            dataset=workload.dataset if workload.dataset != "unnamed" else self.dataset_name,
            query_count=len(workload),
        )
        for outcome in served:
            report.latencies_ms.append(outcome.latency_ms)
            report.total_nodes_expanded += outcome.result.stats.nodes_expanded
            report.total_feasible_groups += outcome.result.stats.feasible_groups
            report.total_keyword_prunes += outcome.result.stats.keyword_prunes
            report.total_kline_removed += outcome.result.stats.kline_removed
            if not outcome.result.groups:
                report.empty_results += 1
            if result_hook is not None:
                result_hook(outcome.result)
        return report
