"""Query-workload generation (Section VII methodology).

The paper "randomly generate[s] four groups of queries corresponding to
each dataset where each group consists of 100 queries" and reports the
average latency.  :class:`WorkloadGenerator` reproduces that: given a
graph and its keyword vocabulary it draws query keyword sets of the
requested size, following the same Zipfian frequency model that
assigned vertex profiles — so query keywords have realistic selectivity
(popular keywords match many vertices, tail keywords few).

Queries that no vertex could ever answer are avoided by construction
when ``ensure_answerable`` is on (the default): each drawn keyword set
must be covered by at least ``group_size`` qualified vertices, else it
is redrawn (bounded retries, then :class:`WorkloadError`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Union

from repro.core.coverage import CoverageContext
from repro.core.errors import WorkloadError
from repro.core.graph import AttributedGraph
from repro.core.query import DKTGQuery, KTGQuery
from repro.datasets.keywords import ZipfVocabulary

__all__ = ["WorkloadGenerator", "QueryWorkload"]

RandomLike = Union[random.Random, int, None]

_MAX_REDRAWS = 200


@dataclass(frozen=True)
class QueryWorkload:
    """A generated batch of queries plus its provenance."""

    dataset: str
    queries: tuple[KTGQuery, ...]
    seed: int

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[KTGQuery]:
        return iter(self.queries)

    def as_dktg(self, gamma: float = 0.5) -> "QueryWorkload":
        """The same workload with every query lifted to a DKTG query."""
        lifted = tuple(
            DKTGQuery(
                keywords=q.keywords,
                group_size=q.group_size,
                tenuity=q.tenuity,
                top_n=q.top_n,
                excluded_anchors=q.excluded_anchors,
                gamma=gamma,
            )
            for q in self.queries
        )
        return QueryWorkload(dataset=self.dataset, queries=lifted, seed=self.seed)


class WorkloadGenerator:
    """Draws random KTG queries against one attributed graph.

    Parameters
    ----------
    graph:
        The target graph.
    vocabulary:
        The keyword vocabulary to draw query keywords from.  When
        omitted, keywords are drawn uniformly from the labels actually
        present on the graph (covers externally loaded datasets).
    dataset_name:
        Recorded on generated workloads for reporting.
    ensure_answerable:
        Redraw keyword sets until at least ``group_size`` vertices
        qualify (cover >= 1 query keyword).
    """

    def __init__(
        self,
        graph: AttributedGraph,
        vocabulary: Optional[ZipfVocabulary] = None,
        dataset_name: str = "unnamed",
        ensure_answerable: bool = True,
    ) -> None:
        self.graph = graph
        self.dataset_name = dataset_name
        self.ensure_answerable = ensure_answerable
        if vocabulary is not None:
            self._vocabulary = vocabulary
        else:
            labels = sorted(graph.keyword_table)
            if not labels:
                raise WorkloadError(
                    "graph carries no keywords; cannot generate query workloads"
                )
            self._vocabulary = ZipfVocabulary(labels, exponent=0.0)

    # ------------------------------------------------------------------
    def generate(
        self,
        count: int = 100,
        keyword_size: int = 6,
        group_size: int = 3,
        tenuity: int = 2,
        top_n: int = 3,
        seed: int = 0,
    ) -> QueryWorkload:
        """Generate *count* queries with the given shape (Table I defaults)."""
        if count < 1:
            raise WorkloadError(f"query count must be >= 1, got {count}")
        if keyword_size < 1:
            raise WorkloadError(f"keyword_size must be >= 1, got {keyword_size}")
        if keyword_size > len(self._vocabulary):
            raise WorkloadError(
                f"keyword_size {keyword_size} exceeds vocabulary size "
                f"{len(self._vocabulary)}"
            )
        rng = random.Random(seed)
        queries = [
            KTGQuery(
                keywords=tuple(self._draw_keywords(keyword_size, group_size, rng)),
                group_size=group_size,
                tenuity=tenuity,
                top_n=top_n,
            )
            for _ in range(count)
        ]
        return QueryWorkload(dataset=self.dataset_name, queries=tuple(queries), seed=seed)

    # ------------------------------------------------------------------
    def _draw_keywords(
        self, keyword_size: int, group_size: int, rng: random.Random
    ) -> list[str]:
        for _ in range(_MAX_REDRAWS):
            labels = self._vocabulary.sample_distinct(keyword_size, rng)
            if not self.ensure_answerable or self._answerable(labels, group_size):
                return labels
        raise WorkloadError(
            f"could not draw an answerable {keyword_size}-keyword query in "
            f"{_MAX_REDRAWS} attempts; the graph may carry too few keywords"
        )

    def _answerable(self, labels: Sequence[str], group_size: int) -> bool:
        context = CoverageContext(self.graph, labels)
        qualified = 0
        for mask in context.masks:
            if mask:
                qualified += 1
                if qualified >= group_size:
                    return True
        return False
