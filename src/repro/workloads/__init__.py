"""Query workloads and the experiment harness (Section VII methodology)."""

from repro.workloads.experiments import (
    EXPERIMENTS,
    ExperimentOutcome,
    Finding,
    experiment_ids,
    reproduce,
)
from repro.workloads.generator import QueryWorkload, WorkloadGenerator
from repro.workloads.runner import (
    ALGORITHMS,
    AlgorithmSpec,
    ExperimentRunner,
    LatencyReport,
)
from repro.workloads.sweep import (
    DEFAULTS,
    PARAMETER_TABLE,
    SweepPoint,
    SweepResult,
    run_parameter_sweep,
)

__all__ = [
    "QueryWorkload",
    "WorkloadGenerator",
    "ALGORITHMS",
    "AlgorithmSpec",
    "ExperimentRunner",
    "LatencyReport",
    "PARAMETER_TABLE",
    "DEFAULTS",
    "SweepPoint",
    "SweepResult",
    "run_parameter_sweep",
    "EXPERIMENTS",
    "ExperimentOutcome",
    "Finding",
    "experiment_ids",
    "reproduce",
]
