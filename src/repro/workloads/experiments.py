"""One-call reproduction of the paper's evaluation (Section VII).

:func:`reproduce` runs a scaled-down version of any of the paper's
experiments — each Table I sweep figure, the dense/large Figure 7, the
Figure 8 case study, the Figure 9 index comparison — and returns a
structured :class:`ExperimentOutcome` whose ``findings`` record whether
each of the paper's qualitative claims held on this run.

``ktg reproduce --experiment fig4`` and EXPERIMENTS.md are built on
this module; the benchmark suite covers the same ground with
pytest-benchmark timing, while this module is the *programmatic* path
(a downstream user validating the library after changing something).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.case_study import run_case_study
from repro.analysis.tables import render_series, render_table
from repro.core.errors import WorkloadError
from repro.datasets.figure1 import case_study_graph, case_study_query
from repro.datasets.registry import load_dataset
from repro.index.stats import measure_footprint
from repro.workloads.sweep import run_parameter_sweep

__all__ = ["Finding", "ExperimentOutcome", "EXPERIMENTS", "reproduce", "experiment_ids"]


@dataclass(frozen=True)
class Finding:
    """One paper claim checked against this run."""

    claim: str
    held: bool
    detail: str = ""

    def render(self) -> str:
        marker = "HELD   " if self.held else "DIVERGED"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{marker}] {self.claim}{suffix}"


@dataclass
class ExperimentOutcome:
    """Structured result of one reproduced experiment."""

    experiment_id: str
    title: str
    table: str
    findings: list[Finding] = field(default_factory=list)

    @property
    def all_held(self) -> bool:
        return all(finding.held for finding in self.findings)

    def render(self) -> str:
        lines = [f"## {self.experiment_id}: {self.title}", "", self.table, ""]
        lines.extend(finding.render() for finding in self.findings)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Sweep-figure experiments (Figures 3-6)
# ----------------------------------------------------------------------

_SWEEP_SETTINGS = {
    "fig3": ("group_size", "latency vs group size p", [3, 4, 5]),
    "fig4": ("tenuity", "latency vs social constraint k", [1, 2, 3, 4]),
    "fig5": ("keyword_size", "latency vs query keyword size", [4, 5, 6, 7, 8]),
    "fig6": ("top_n", "latency vs N", [3, 5, 7, 9, 11]),
}

_SWEEP_ALGORITHMS = [
    "KTG-QKC-NLRNL",
    "KTG-VKC-NL",
    "KTG-VKC-NLRNL",
    "KTG-VKC-DEG-NLRNL",
    "DKTG-GREEDY",
]


def _mean_over_values(series: list[tuple[int, float]]) -> float:
    if not series:
        return 0.0
    return sum(latency for _, latency in series) / len(series)


def _run_sweep_experiment(
    experiment_id: str,
    dataset: str,
    scale: float,
    queries: int,
    seed: int,
) -> ExperimentOutcome:
    parameter, title, values = _SWEEP_SETTINGS[experiment_id]
    graph, vocabulary = load_dataset(dataset, scale=scale)
    sweep = run_parameter_sweep(
        graph,
        parameter,
        vocabulary=vocabulary,
        dataset_name=dataset,
        values=values,
        algorithms=_SWEEP_ALGORITHMS,
        queries_per_setting=queries,
        seed=seed,
    )
    series = {name: sweep.series(name) for name in sweep.algorithms()}
    table = render_series(
        series, x_label=parameter, title=f"{dataset}: mean latency (ms) vs {parameter}"
    )

    means = {name: _mean_over_values(points) for name, points in series.items()}
    findings = [
        Finding(
            claim="KTG-VKC-NLRNL outperforms KTG-VKC-NL (NLRNL beats NL)",
            held=means["KTG-VKC-NLRNL"] <= means["KTG-VKC-NL"],
            detail=(
                f"{means['KTG-VKC-NLRNL']:.1f}ms vs {means['KTG-VKC-NL']:.1f}ms"
            ),
        ),
        Finding(
            claim="VKC ordering outperforms static QKC ordering",
            held=means["KTG-VKC-NLRNL"] <= means["KTG-QKC-NLRNL"],
            detail=(
                f"{means['KTG-VKC-NLRNL']:.1f}ms vs {means['KTG-QKC-NLRNL']:.1f}ms"
            ),
        ),
        Finding(
            claim="DKTG-Greedy is comparable with KTG-VKC-DEG-NLRNL",
            held=means["DKTG-GREEDY"] <= 6 * max(means["KTG-VKC-DEG-NLRNL"], 1e-9),
            detail=(
                f"{means['DKTG-GREEDY']:.1f}ms vs {means['KTG-VKC-DEG-NLRNL']:.1f}ms"
            ),
        ),
    ]
    if experiment_id == "fig3":
        fastest = series["KTG-VKC-DEG-NLRNL"]
        findings.append(
            Finding(
                claim="latency grows with the group size p",
                held=fastest[-1][1] >= fastest[0][1],
                detail=f"p={fastest[0][0]}: {fastest[0][1]:.1f}ms -> "
                f"p={fastest[-1][0]}: {fastest[-1][1]:.1f}ms",
            )
        )
    if experiment_id == "fig5":
        fastest = series["KTG-VKC-DEG-NLRNL"]
        low = min(latency for _, latency in fastest)
        high = max(latency for _, latency in fastest)
        findings.append(
            Finding(
                claim="latency is stable across query keyword sizes",
                held=high <= 12 * max(low, 1e-9),
                detail=f"range {low:.1f}ms - {high:.1f}ms",
            )
        )
    if experiment_id == "fig6":
        fastest = series["KTG-VKC-DEG-NLRNL"]
        low = min(latency for _, latency in fastest)
        high = max(latency for _, latency in fastest)
        findings.append(
            Finding(
                claim="latency is near-flat in N",
                held=high <= 12 * max(low, 1e-9),
                detail=f"range {low:.1f}ms - {high:.1f}ms",
            )
        )
    return ExperimentOutcome(
        experiment_id=experiment_id,
        title=title,
        table=table,
        findings=findings,
    )


# ----------------------------------------------------------------------
# Figure 7 (denser + large graphs)
# ----------------------------------------------------------------------

def _run_fig7(dataset: str, scale: float, queries: int, seed: int) -> ExperimentOutcome:
    outcomes = []
    tables = []
    for profile, parameter, values, overrides in (
        ("twitter", "group_size", [3, 4], {"tenuity": 1}),
        ("dblp-large", "tenuity", [1, 2, 3], {}),
    ):
        graph, vocabulary = load_dataset(profile, scale=scale)
        sweep = run_parameter_sweep(
            graph,
            parameter,
            vocabulary=vocabulary,
            dataset_name=profile,
            values=values,
            algorithms=["KTG-VKC-NLRNL", "KTG-VKC-DEG-NLRNL"],
            queries_per_setting=queries,
            seed=seed,
            overrides=overrides,
        )
        series = {name: sweep.series(name) for name in sweep.algorithms()}
        tables.append(
            render_series(
                series,
                x_label=parameter,
                title=f"{profile}: mean latency (ms) vs {parameter}",
            )
        )
        outcomes.append(series)

    twitter_series, large_series = outcomes
    deg_mean = _mean_over_values(twitter_series["KTG-VKC-DEG-NLRNL"])
    vkc_mean = _mean_over_values(twitter_series["KTG-VKC-NLRNL"])
    findings = [
        Finding(
            claim="on the denser graph KTG-VKC-DEG stays competitive with KTG-VKC",
            held=deg_mean <= 2.0 * max(vkc_mean, 1e-9),
            detail=f"{deg_mean:.1f}ms vs {vkc_mean:.1f}ms",
        ),
        Finding(
            claim="KTG-VKC-DEG-NLRNL completes the large-graph grid",
            held=all(latency > 0 for _, latency in large_series["KTG-VKC-DEG-NLRNL"]),
        ),
    ]
    return ExperimentOutcome(
        experiment_id="fig7",
        title="denser graph (Twitter) and large graph (DBLP)",
        table="\n\n".join(tables),
        findings=findings,
    )


# ----------------------------------------------------------------------
# Figure 8 (case study) and Figure 9 (index overhead)
# ----------------------------------------------------------------------

def _run_fig8(dataset: str, scale: float, queries: int, seed: int) -> ExperimentOutcome:
    outcome = run_case_study(case_study_graph(), case_study_query())
    rows = [
        {
            "algorithm": name,
            "best_cov": quality.best_coverage,
            "diversity": quality.diversity,
            "zero_members": quality.zero_coverage_members,
            "overlap": outcome.overlap[name],
        }
        for name, quality in outcome.quality.items()
    ]
    table = render_table(rows, title="case study: effectiveness (Figure 8)")
    findings = [
        Finding(
            claim="TAGQ returns reviewers with no query keyword (red lines)",
            held=outcome.quality["TAGQ"].zero_coverage_members > 0,
            detail=f"{outcome.quality['TAGQ'].zero_coverage_members} members",
        ),
        Finding(
            claim="KTG members always cover a query keyword",
            held=outcome.quality["KTG-VKC-DEG"].zero_coverage_members == 0,
        ),
        Finding(
            claim="DKTG-Greedy returns fully diverse groups",
            held=outcome.quality["DKTG-Greedy"].diversity == 1.0,
        ),
        Finding(
            claim="plain KTG results overlap (the DKTG motivation)",
            held=outcome.overlap["KTG-VKC-DEG"] > 0.0,
            detail=f"overlap ratio {outcome.overlap['KTG-VKC-DEG']:.2f}",
        ),
    ]
    return ExperimentOutcome(
        experiment_id="fig8",
        title="effectiveness case study vs TAGQ",
        table=table,
        findings=findings,
    )


def _run_fig9(dataset: str, scale: float, queries: int, seed: int) -> ExperimentOutcome:
    profiles = ["gowalla", "brightkite", "flickr", "dblp"]
    rows = []
    space_ok = True
    build_ok = True
    for profile in profiles:
        graph, _ = load_dataset(profile, scale=scale)
        # Build times on scaled-down graphs are sub-millisecond and
        # noisy; take the best of three builds for a stable comparison.
        nl = min(
            (measure_footprint(graph, "nl") for _ in range(3)),
            key=lambda footprint: footprint.build_seconds,
        )
        nlrnl = min(
            (measure_footprint(graph, "nlrnl") for _ in range(3)),
            key=lambda footprint: footprint.build_seconds,
        )
        rows.append(
            {
                "dataset": profile,
                "nl_entries": nl.entries,
                "nlrnl_entries": nlrnl.entries,
                "nl_build_s": nl.build_seconds,
                "nlrnl_build_s": nlrnl.build_seconds,
            }
        )
        space_ok &= nlrnl.entries < nl.entries
        build_ok &= nlrnl.build_seconds >= nl.build_seconds * 0.7
    table = render_table(rows, title="index footprint and build time (Figure 9)")
    findings = [
        Finding(claim="NLRNL uses less space than NL on every dataset", held=space_ok),
        Finding(
            claim="NLRNL construction is at least as expensive as NL",
            held=build_ok,
        ),
    ]
    return ExperimentOutcome(
        experiment_id="fig9",
        title="index space and construction overhead",
        table=table,
        findings=findings,
    )


# ----------------------------------------------------------------------
# Registry + entry point
# ----------------------------------------------------------------------

Runner = Callable[[str, float, int, int], ExperimentOutcome]

EXPERIMENTS: dict[str, Runner] = {
    "fig3": lambda d, s, q, seed: _run_sweep_experiment("fig3", d, s, q, seed),
    "fig4": lambda d, s, q, seed: _run_sweep_experiment("fig4", d, s, q, seed),
    "fig5": lambda d, s, q, seed: _run_sweep_experiment("fig5", d, s, q, seed),
    "fig6": lambda d, s, q, seed: _run_sweep_experiment("fig6", d, s, q, seed),
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
}


def experiment_ids() -> list[str]:
    """Identifiers accepted by :func:`reproduce`."""
    return sorted(EXPERIMENTS)


def reproduce(
    experiment_id: str,
    dataset: str = "gowalla",
    scale: float = 0.25,
    queries: int = 3,
    seed: int = 0,
) -> ExperimentOutcome:
    """Reproduce one paper experiment at reduced scale.

    Raises :class:`WorkloadError` for unknown experiment ids.
    """
    runner = EXPERIMENTS.get(experiment_id.lower())
    if runner is None:
        raise WorkloadError(
            f"unknown experiment {experiment_id!r}; "
            f"expected one of {experiment_ids()}"
        )
    return runner(dataset, scale, queries, seed)
