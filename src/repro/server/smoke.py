"""CI smoke driver: boot the server, drive the wire, assert clean exit.

Run as ``python -m repro.server.smoke``.  The script brings a real
:class:`KTGServer` up on an ephemeral port over a small dataset and
checks every serving behaviour the front end promises, end to end:

1. ``GET /healthz`` answers 200 while the server is up;
2. ``POST /solve`` answers an exact result, and a repeat is served
   from cache;
3. a coalesced pair — two concurrent identical requests against a cold
   key — executes the solver exactly once (obs counter
   ``server.solver_runs``);
4. a client that exceeds its token bucket gets 429 + Retry-After;
5. a request whose deadline already expired gets a 503 degraded
   response;
6. ``GET /stats`` exports the server counters;
7. shutdown is clean: thread count returns to its pre-server baseline
   and no ``/dev/shm`` shared-memory segments are left behind.

``python -m repro.server.smoke --churn`` runs the serve-during-mutation
lane instead: the server boots in epoch mode (``mutations=True`` with
shared-memory snapshots), a driver thread streams ``POST /mutate`` edge
edits while the foreground fires solves, and the run asserts zero 5xx
responses, at least one observed epoch rotation, a read-only control
server rejecting ``/mutate`` with 400, and the same thread/shm leak
checks on the way out.

``python -m repro.server.smoke --shard`` runs the multi-graph lane: a
registry-backed server has two tenants loaded over the wire (one of
them sharded, ``shards=2`` with a process fleet), interleaved solves
must never share a cache entry or a coalesced solve across tenants,
the sharded tenant's answers must equal its unsharded twin's
bit-for-bit, ``/graphs`` list/load/drop and ``/stats?graph=`` are
exercised, shard shared-memory segments must appear while the process
fleet is up and vanish when the tenant is dropped, and the same
thread/shm leak checks run on the way out.

Exit code 0 on success, 1 with a diagnostic on the first failure.
"""

from __future__ import annotations

import glob
import random
import sys
import threading
import time

from repro.core.query import KTGQuery
from repro.datasets.registry import load_dataset
from repro.obs.instruments import InstrumentRegistry
from repro.server.app import KTGServer
from repro.server.client import http_request
from repro.server.runner import ServerThread
from repro.service.service import QueryService
from repro.shard.registry import GraphRegistry

__all__ = ["main", "churn_main", "shard_main"]


def _shm_segments() -> set[str]:
    return set(glob.glob("/dev/shm/psm_*"))


def _query_payload(labels: tuple[str, ...], tenuity: int = 2) -> dict:
    return {
        "keywords": list(labels),
        "group_size": 2,
        "tenuity": tenuity,
        "top_n": 2,
    }


def main() -> int:
    checks: list[str] = []

    def ok(label: str) -> None:
        checks.append(label)
        print(f"ok   {label}")

    def fail(label: str, detail: str) -> int:
        print(f"FAIL {label}: {detail}", file=sys.stderr)
        return 1

    baseline_threads = threading.active_count()
    baseline_shm = _shm_segments()

    graph, _ = load_dataset("brightkite", scale=0.08)
    labels = tuple(sorted(graph.keyword_table))
    registry = InstrumentRegistry()
    service = QueryService(
        graph, "KTG-VKC-NLRNL", max_workers=4, instruments=registry
    )
    server = KTGServer(
        service,
        rate_limit_qps=0.5,
        rate_limit_burst=2.0,
        max_inflight=8,
        instruments=registry,
    )

    with service, ServerThread(server) as handle:
        host, port = handle.address

        status, body = http_request(host, port, "GET", "/healthz")
        if status != 200 or not body or body.get("status") != "ok":
            return fail("healthz", f"status={status} body={body}")
        ok("healthz answers 200")

        solve_headers = {"X-Client-Id": "smoke-solver"}
        status, body = http_request(
            host, port, "POST", "/solve",
            _query_payload(labels[:3]), headers=solve_headers,
        )
        if status != 200 or not body or body.get("from_cache"):
            return fail("solve", f"status={status} body={body}")
        ok("solve answers 200 with a fresh result")

        status, body = http_request(
            host, port, "POST", "/solve",
            _query_payload(labels[:3]), headers=solve_headers,
        )
        if status != 200 or not body or not body.get("from_cache"):
            return fail("solve-cache", f"status={status} body={body}")
        ok("repeat solve is served from cache")

        # Coalesced pair: a cold canonical key hit by two concurrent
        # clients must execute the solver exactly once — either the
        # follower shares the in-flight solve, or it arrives after
        # completion and hits the cache.  Both paths mean one run.
        runs_before = registry.counter("server.solver_runs").value
        cold = _query_payload(labels[:4], tenuity=1)
        outcomes: list[tuple[int, dict]] = []
        lock = threading.Lock()

        def fire(client: str) -> None:
            result = http_request(
                host, port, "POST", "/solve", cold,
                headers={"X-Client-Id": client},
            )
            with lock:
                outcomes.append(result)  # type: ignore[arg-type]

        pair = [
            threading.Thread(target=fire, args=(f"smoke-pair-{i}",))
            for i in range(2)
        ]
        for thread in pair:
            thread.start()
        for thread in pair:
            thread.join()
        runs = registry.counter("server.solver_runs").value - runs_before
        if len(outcomes) != 2 or any(status != 200 for status, _ in outcomes):
            return fail("coalesce", f"outcomes={outcomes}")
        if runs != 1:
            return fail("coalesce", f"expected exactly 1 solver run, got {runs}")
        groups = [body.get("groups") for _, body in outcomes]
        if groups[0] != groups[1]:
            return fail("coalesce", f"divergent answers: {groups}")
        ok("coalesced pair shares one solver run")

        # Token bucket: burst of 2, negligible refill — the third
        # request from one client must be rejected.
        limited_headers = {"X-Client-Id": "smoke-limited"}
        statuses = [
            http_request(
                host, port, "POST", "/solve",
                _query_payload(labels[:3]), headers=limited_headers,
            )[0]
            for _ in range(3)
        ]
        if statuses[:2] != [200, 200] or statuses[2] != 429:
            return fail("rate-limit", f"statuses={statuses}")
        ok("rate limiter rejects the post-burst request with 429")

        expired = dict(_query_payload(labels[:3]), deadline_ms=0)
        status, body = http_request(
            host, port, "POST", "/solve", expired,
            headers={"X-Client-Id": "smoke-deadline"},
        )
        if status != 503 or not body or "deadline" not in body.get("error", ""):
            return fail("deadline", f"status={status} body={body}")
        ok("expired deadline answers 503")

        status, body = http_request(host, port, "GET", "/stats")
        if status != 200 or not body or "server" not in body:
            return fail("stats", f"status={status} body={body}")
        counters = body["server"].get("counters", {})
        if counters.get("server.solver_runs", 0) < 1:
            return fail("stats", f"missing server counters: {counters}")
        ok("stats exports server counters")

    service.close()

    # Clean shutdown: background loop thread and solver threads joined.
    deadline = time.monotonic() + 5.0
    while threading.active_count() > baseline_threads and time.monotonic() < deadline:
        time.sleep(0.05)
    if threading.active_count() > baseline_threads:
        leftover = [t.name for t in threading.enumerate()]
        return fail("shutdown-threads", f"threads leaked: {leftover}")
    ok("no leaked threads after shutdown")

    leaked = _shm_segments() - baseline_shm
    if leaked:
        return fail("shutdown-shm", f"leaked segments: {sorted(leaked)}")
    ok("no leaked /dev/shm segments")

    print(f"server smoke: all {len(checks)} checks passed")
    return 0


def churn_main() -> int:
    """The ``--churn`` lane: serve while the graph mutates underneath.

    Asserts the serve-during-mutation contract end to end over the
    wire: zero 5xx responses while edges stream in, at least one epoch
    rotation observed through ``/stats``, mutation effects visible in
    the serving state (graph version moves, answers stay 200/exact),
    and a clean shutdown with no leaked threads or shm segments.
    """
    checks: list[str] = []

    def ok(label: str) -> None:
        checks.append(label)
        print(f"ok   {label}")

    def fail(label: str, detail: str) -> int:
        print(f"FAIL {label}: {detail}", file=sys.stderr)
        return 1

    baseline_threads = threading.active_count()
    baseline_shm = _shm_segments()

    graph, _ = load_dataset("brightkite", scale=0.08)
    labels = tuple(sorted(graph.keyword_table))
    registry = InstrumentRegistry()
    service = QueryService(
        graph,
        "KTG-VKC-NLRNL",
        max_workers=4,
        mutations=True,
        epoch_rotate_after=8,
        epoch_max_delta=64,
        epoch_shared=True,
        instruments=registry,
    )
    server = KTGServer(service, max_inflight=16, instruments=registry)

    mutations = 60
    solves = 24
    bad: list[tuple[str, int, dict]] = []
    bad_lock = threading.Lock()

    with service, ServerThread(server) as handle:
        host, port = handle.address

        # Read-only control: a second server over a plain service must
        # reject /mutate with a 400 (EpochError), never a 5xx.
        control_service = QueryService(graph, "KTG-VKC-NLRNL", max_workers=1)
        with control_service, ServerThread(KTGServer(control_service)) as control:
            chost, cport = control.address
            status, body = http_request(
                chost, cport, "POST", "/mutate", {"op": "add_edge", "u": 0, "v": 1}
            )
            if status != 400 or not body or "read-only" not in body.get("error", ""):
                return fail("mutate-readonly", f"status={status} body={body}")
        ok("read-only server rejects /mutate with 400")

        rng = random.Random(0)
        n = graph.num_vertices

        def drive_mutations() -> None:
            for _ in range(mutations):
                u, v = rng.sample(range(n), 2)
                op = "remove_edge" if graph.has_edge(u, v) else "add_edge"
                status, body = http_request(
                    host, port, "POST", "/mutate", {"op": op, "u": u, "v": v}
                )
                if status >= 500 or status != 200:
                    with bad_lock:
                        bad.append(("mutate", status, body or {}))

        driver = threading.Thread(target=drive_mutations, name="churn-driver")
        driver.start()
        statuses: list[int] = []
        for i in range(solves):
            status, body = http_request(
                host, port, "POST", "/solve",
                _query_payload(labels[i % max(1, len(labels) - 3):][:3]),
                headers={"X-Client-Id": "churn-solver"},
            )
            statuses.append(status)
            if status >= 500:
                with bad_lock:
                    bad.append(("solve", status, body or {}))
        driver.join()

        if bad:
            return fail("zero-5xx", f"failed requests: {bad[:5]}")
        if any(status != 200 for status in statuses):
            return fail("solve-status", f"statuses={statuses}")
        ok(f"zero 5xx across {mutations} mutations and {solves} solves")

        status, body = http_request(host, port, "GET", "/stats")
        if status != 200 or not body or "epoch" not in body:
            return fail("stats-epoch", f"status={status} body={body}")
        epoch = body["epoch"]
        if epoch.get("rotations", 0) < 1:
            return fail("rotation", f"no epoch rotation observed: {epoch}")
        ok(f"observed {epoch['rotations']} epoch rotations (epoch {epoch['epoch_id']})")
        counters = body["server"].get("counters", {})
        if counters.get("server.mutations", 0) != mutations:
            return fail("mutate-counter", f"counters={counters}")
        ok("server.mutations counter matches the driven stream")
        service_stats = body.get("service", {})
        if "epoch_id" not in service_stats:
            return fail("stats-service", f"service stats lack epoch fields: {service_stats}")
        ok("service stats export epoch id / delta depth")

    service.close()

    deadline = time.monotonic() + 5.0
    while threading.active_count() > baseline_threads and time.monotonic() < deadline:
        time.sleep(0.05)
    if threading.active_count() > baseline_threads:
        leftover = [t.name for t in threading.enumerate()]
        return fail("shutdown-threads", f"threads leaked: {leftover}")
    ok("no leaked threads after shutdown")

    leaked = _shm_segments() - baseline_shm
    if leaked:
        return fail("shutdown-shm", f"leaked segments: {sorted(leaked)}")
    ok("no leaked /dev/shm segments")

    print(f"churn smoke: all {len(checks)} checks passed")
    return 0


def shard_main() -> int:
    """The ``--shard`` lane: multi-graph serving with a sharded tenant.

    Asserts the registry contract end to end over the wire: tenants are
    isolated (no cross-tenant cache hits or coalesced solves even for
    byte-identical queries), a ``shards=2`` tenant answers bit-for-bit
    what its unsharded twin answers, the ``/graphs`` lifecycle
    endpoints work, shard segments live exactly as long as the tenant
    that owns them, and shutdown leaks neither threads nor shm.
    """
    checks: list[str] = []

    def ok(label: str) -> None:
        checks.append(label)
        print(f"ok   {label}")

    def fail(label: str, detail: str) -> int:
        print(f"FAIL {label}: {detail}", file=sys.stderr)
        return 1

    baseline_threads = threading.active_count()
    baseline_shm = _shm_segments()

    graph, _ = load_dataset("brightkite", scale=0.08)
    labels = tuple(sorted(graph.keyword_table))
    registry = InstrumentRegistry()
    service = QueryService(
        graph, "KTG-VKC-NLRNL", max_workers=4, instruments=registry
    )
    # Every tenant the registry creates defaults to a process fleet for
    # its sharded engine (only the shards>1 tenant ever builds one).
    graphs = GraphRegistry(
        instruments=registry,
        algorithm="KTG-VKC-NLRNL",
        max_workers=2,
        jobs_executor="process",
    )
    server = KTGServer(
        service, registry=graphs, max_inflight=16, instruments=registry
    )

    with service, graphs, ServerThread(server) as handle:
        host, port = handle.address

        status, body = http_request(host, port, "GET", "/graphs")
        if status != 200 or not body or body.get("count") != 0:
            return fail("graphs-empty", f"status={status} body={body}")
        ok("GET /graphs starts empty")

        # Two same-dataset tenants — one sharded, one not — plus the
        # default service: three services over identical graphs is the
        # worst case for cross-tenant cache collisions.
        status, plain = http_request(
            host, port, "POST", "/graphs/load",
            {"name": "plain", "profile": "brightkite", "scale": 0.08},
        )
        if status != 200 or not plain or plain.get("graph_id") != "plain#1":
            return fail("load-plain", f"status={status} body={plain}")
        status, sharded = http_request(
            host, port, "POST", "/graphs/load",
            {"name": "sharded", "profile": "brightkite", "scale": 0.08, "shards": 2},
        )
        if status != 200 or not sharded or sharded.get("graph_id") != "sharded#1":
            return fail("load-sharded", f"status={status} body={sharded}")
        ok("two tenants loaded over the wire (one with shards=2)")

        query = _query_payload(labels[:3])
        answers: dict[str, dict] = {}
        for tenant in (None, "plain", "sharded", "plain", "sharded"):
            payload = dict(query) if tenant is None else dict(query, graph=tenant)
            status, body = http_request(host, port, "POST", "/solve", payload)
            if status != 200 or not body:
                return fail("solve-tenant", f"tenant={tenant} status={status} body={body}")
            key = tenant or "default"
            if key in answers:
                if not body.get("from_cache"):
                    return fail(
                        "tenant-cache", f"repeat solve for {key} missed its own cache"
                    )
            else:
                if body.get("from_cache"):
                    return fail(
                        "tenant-isolation",
                        f"first solve for {key} hit another tenant's cache: {body}",
                    )
                answers[key] = body
        ok("interleaved solves: zero cross-tenant cache hits, per-tenant repeats hit")

        if answers["sharded"]["groups"] != answers["plain"]["groups"]:
            return fail(
                "shard-identical",
                f"sharded={answers['sharded']['groups']} plain={answers['plain']['groups']}",
            )
        if answers["sharded"]["groups"] != answers["default"]["groups"]:
            return fail("shard-identical", "sharded tenant diverged from default service")
        ok("sharded tenant answers bit-identical groups to its unsharded twin")

        # The process fleet pins its shard CSR segments in /dev/shm for
        # exactly as long as the tenant lives.
        shard_segments = _shm_segments() - baseline_shm
        if len(shard_segments) < 2:
            return fail(
                "shard-segments",
                f"expected >= 2 live shard segments, saw {sorted(shard_segments)}",
            )
        ok(f"{len(shard_segments)} shard segments live while the process fleet is up")

        status, body = http_request(host, port, "GET", "/stats?graph=sharded")
        if status != 200 or not body or body.get("graph_id") != "sharded#1":
            return fail("stats-graph", f"status={status} body-keys={sorted(body or {})}")
        shard_report = body.get("shard") or []
        if not shard_report or shard_report[0].get("num_shards") != 2:
            return fail("stats-shard", f"shard section missing/wrong: {shard_report}")
        if not shard_report[0].get("built") or shard_report[0].get("executor") != "process":
            return fail("stats-shard", f"engine not built as a process fleet: {shard_report}")
        if len(body.get("graphs", [])) != 2:
            return fail("stats-graphs", f"registry listing wrong: {body.get('graphs')}")
        ok("GET /stats?graph= scopes the report and exports the shard engine")

        status, body = http_request(
            host, port, "POST", "/solve", dict(query, graph="missing")
        )
        if status != 404:
            return fail("unknown-graph", f"status={status} body={body}")
        ok("unknown tenant answers 404")

        status, body = http_request(
            host, port, "POST", "/graphs/drop", {"name": "sharded"}
        )
        if status != 200 or not body or not body.get("dropped"):
            return fail("drop", f"status={status} body={body}")
        leftover = _shm_segments() - baseline_shm
        if leftover:
            return fail("drop-segments", f"segments survived the drop: {sorted(leftover)}")
        ok("dropping the sharded tenant releases its segments")

        # Reload under the same name: new generation, cold cache.
        status, body = http_request(
            host, port, "POST", "/graphs/load",
            {"name": "plain", "profile": "brightkite", "scale": 0.08},
        )
        if status != 200 or not body or body.get("graph_id") != "plain#2":
            return fail("reload", f"status={status} body={body}")
        status, body = http_request(
            host, port, "POST", "/solve", dict(query, graph="plain")
        )
        if status != 200 or not body or body.get("from_cache"):
            return fail(
                "reload-cold",
                f"reloaded tenant served a stale incarnation's cache: {body}",
            )
        ok("reloading a name bumps the generation and colds the cache")

        # A registry-less control server keeps the old single-graph
        # contract: graph surfaces answer 400, never 5xx.
        control_service = QueryService(graph, "KTG-VKC-NLRNL", max_workers=1)
        with control_service, ServerThread(KTGServer(control_service)) as control:
            chost, cport = control.address
            status, _ = http_request(chost, cport, "GET", "/graphs")
            if status != 400:
                return fail("control-graphs", f"status={status}")
            status, _ = http_request(
                chost, cport, "POST", "/solve", dict(query, graph="plain")
            )
            if status != 400:
                return fail("control-solve", f"status={status}")
        ok("registry-less server rejects graph surfaces with 400")

    service.close()

    deadline = time.monotonic() + 5.0
    while threading.active_count() > baseline_threads and time.monotonic() < deadline:
        time.sleep(0.05)
    if threading.active_count() > baseline_threads:
        leftover_threads = [t.name for t in threading.enumerate()]
        return fail("shutdown-threads", f"threads leaked: {leftover_threads}")
    ok("no leaked threads after shutdown")

    leaked = _shm_segments() - baseline_shm
    if leaked:
        return fail("shutdown-shm", f"leaked segments: {sorted(leaked)}")
    ok("no leaked /dev/shm segments")

    print(f"shard smoke: all {len(checks)} checks passed")
    return 0


def _entry_point() -> int:
    if "--churn" in sys.argv[1:]:
        return churn_main()
    if "--shard" in sys.argv[1:]:
        return shard_main()
    return main()


if __name__ == "__main__":
    raise SystemExit(_entry_point())
