"""Identical-query coalescing: N concurrent duplicates share one solve.

A popular query arriving from many clients at once is the worst case
for a cache: every request misses (the first solve has not finished
yet) and the service solves the same problem N times.  The coalescer
closes that window.  Requests are keyed by the same canonical identity
the result cache uses (``canonical_query_key`` + graph version +
algorithm); the first arrival becomes the *leader* and runs the solve,
every later arrival becomes a *follower* and awaits the leader's
future.  When the leader finishes, the result fans out to every
follower — and the leader's exact answer lands in the result cache, so
requests arriving after completion hit the cache as usual.

Single-threaded by design: ``join``/``resolve`` are called only from
the event loop (the solve itself runs in an executor thread, but the
bookkeeping never leaves the loop), so no locks are needed.

Failure semantics: a leader that raises propagates the exception to
every follower (they would have failed identically), and the in-flight
entry is removed so the next arrival retries fresh.
"""

from __future__ import annotations

from typing import Hashable, Optional

import asyncio

__all__ = ["InflightCoalescer"]


class InflightCoalescer:
    """Registry of in-flight solves keyed by canonical query identity."""

    def __init__(self) -> None:
        self._inflight: dict[Hashable, asyncio.Future] = {}
        self.leaders = 0
        self.followers = 0

    def join(self, key: Hashable) -> tuple[asyncio.Future, bool]:
        """Return ``(future, is_leader)`` for *key*.

        The leader receives a fresh future it **must** settle via
        :meth:`resolve`; followers receive the leader's future to await.
        """
        future = self._inflight.get(key)
        if future is not None:
            self.followers += 1
            return future, False
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self.leaders += 1
        return future, True

    def resolve(
        self,
        key: Hashable,
        future: asyncio.Future,
        result: object = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Settle the leader's future and retire the in-flight entry."""
        if self._inflight.get(key) is future:
            del self._inflight[key]
        if future.cancelled():
            return
        if error is not None:
            future.set_exception(error)
            # A follower may have timed out and stopped awaiting; don't
            # let its abandoned future warn about an unretrieved error.
            future.exception()
        else:
            future.set_result(result)

    def inflight(self) -> int:
        """Number of distinct solves currently in flight."""
        return len(self._inflight)

    def __repr__(self) -> str:
        return (
            f"InflightCoalescer(inflight={len(self._inflight)}, "
            f"leaders={self.leaders}, followers={self.followers})"
        )
