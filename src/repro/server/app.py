"""`KTGServer`: the asyncio HTTP front end over :class:`QueryService`.

Request path for ``POST /solve``::

    client ──▶ rate limiter (per-client token bucket)      429 on drain
                 │
                 ▼ deadline check (X-Deadline-Ms / body)   503 if expired
                 ▼ overload check (in-flight leader cap)   503 + Retry-After
                 ▼ coalescer (canonical query identity)
                 │    leader:   QueryService.submit in a worker thread
                 │    follower: await the leader's future (deadline-capped)
                 ▼
               JSON answer {groups, exact, degraded, from_cache, coalesced}

Design rules:

* **The event loop never solves.**  Every ``QueryService.submit`` runs
  in a dedicated thread pool via ``run_in_executor``; the loop only
  parses, admits, coalesces and serializes, so health checks and stats
  stay responsive while solves grind.
* **Deadlines become budgets.**  A client deadline (relative
  ``deadline_ms``) is mapped onto the solver's anytime ``time_budget``
  machinery: the effective budget is the minimum of the service
  default, the request's own ``time_budget`` and the remaining
  deadline.  A budget-tripped answer comes back HTTP 200 with
  ``degraded: true`` — the anytime contract on the wire.
* **Degradation before rejection.**  Above ``pressure_threshold``
  in-flight solves, new solves are clamped to
  ``pressure_time_budget`` (partial answers under load); only above
  ``max_inflight`` are requests rejected with 503 + Retry-After.
* **Metrics are obs counters.**  Every admission decision and endpoint
  hit increments a ``server.*`` counter in the shared
  :class:`~repro.obs.instruments.InstrumentRegistry`; ``GET /stats``
  returns them together with ``ServiceStats`` and the service's own
  instrument report.

The server object is loop-agnostic: ``await start()`` binds the
socket, ``await stop()`` drains connections and shuts the solver
threads down (no leaked threads, asserted by the CI smoke job).  See
``docs/server.md``.
"""

from __future__ import annotations

import functools
import math
import time
from typing import Optional

import asyncio

from repro.core.errors import QueryValidationError, ReproError, UnknownGraphError
from repro.core.query import DKTGQuery, KTGQuery
from repro.obs.instruments import InstrumentRegistry
from repro.server.coalesce import InflightCoalescer
from repro.server.http import (
    HttpError,
    HttpRequest,
    json_body,
    json_response,
    read_request,
)
from repro.server.ratelimit import RateLimiter
from repro.service.service import QueryService, ServiceResult
from repro.shard.registry import GraphRegistry

__all__ = ["KTGServer"]

#: Endpoint names used in per-endpoint counters/timers.
_ENDPOINTS = ("solve", "batch", "stats", "healthz", "mutate", "graphs")

#: Mutation operations accepted by ``POST /mutate`` and the payload
#: fields each one requires beyond ``op``.
_MUTATION_OPS = {
    "add_edge": ("u", "v"),
    "remove_edge": ("u", "v"),
    "set_keywords": ("vertex", "keywords"),
    "add_vertex": (),
}


def _parse_query(payload: dict) -> KTGQuery:
    """Build a query object from a request payload (400 on bad input)."""
    keywords = payload.get("keywords")
    if not isinstance(keywords, list) or not all(
        isinstance(label, str) for label in keywords
    ):
        raise HttpError(400, "'keywords' must be a list of strings")
    fields: dict = {"keywords": tuple(keywords)}
    for name, kind in (
        ("group_size", int),
        ("tenuity", int),
        ("top_n", int),
    ):
        if name in payload:
            value = payload[name]
            if isinstance(value, bool) or not isinstance(value, kind):
                raise HttpError(400, f"'{name}' must be an integer")
            fields[name] = value
    if "excluded_anchors" in payload:
        anchors = payload["excluded_anchors"]
        if not isinstance(anchors, list) or not all(
            isinstance(v, int) and not isinstance(v, bool) for v in anchors
        ):
            raise HttpError(400, "'excluded_anchors' must be a list of integers")
        fields["excluded_anchors"] = tuple(anchors)
    try:
        if "gamma" in payload:
            gamma = payload["gamma"]
            if isinstance(gamma, bool) or not isinstance(gamma, (int, float)):
                raise HttpError(400, "'gamma' must be a number")
            return DKTGQuery(gamma=float(gamma), **fields)
        return KTGQuery(**fields)
    except QueryValidationError as exc:
        raise HttpError(400, f"invalid query: {exc}") from exc


def _parse_deadline_ms(request: HttpRequest, payload: dict) -> Optional[float]:
    """Relative client deadline in ms (body field wins over header)."""
    raw: object = payload.get("deadline_ms")
    if raw is None:
        header = request.header("x-deadline-ms")
        if header is None:
            return None
        try:
            raw = float(header)
        except ValueError as exc:
            raise HttpError(400, "X-Deadline-Ms must be a number") from exc
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise HttpError(400, "'deadline_ms' must be a number")
    return float(raw)


class KTGServer:
    """Asyncio HTTP serving layer over one :class:`QueryService`.

    Parameters
    ----------
    service:
        The query service answering solves.  Its thread-safety contract
        (concurrent ``submit`` calls are safe) is what lets the solver
        thread pool fan requests into it.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (tests and the
        smoke job read it back from :attr:`address` after ``start``).
    rate_limit_qps / rate_limit_burst:
        Per-client token bucket (``X-Client-Id`` header, else peer
        host).  ``0`` disables limiting.
    max_inflight:
        Hard cap on concurrently *leading* solves; beyond it new solve
        requests get 503 with a Retry-After hint.  Coalesced followers
        do not count — they consume no solver capacity.
    pressure_threshold / pressure_time_budget:
        Soft degradation band: at or above ``pressure_threshold``
        in-flight solves, new solves are clamped to
        ``pressure_time_budget`` seconds so the server sheds load with
        partial (degraded) answers before it starts rejecting.
        ``pressure_threshold=None`` (default) disables the band.
    registry:
        Optional :class:`~repro.shard.registry.GraphRegistry` enabling
        multi-graph serving: a ``graph`` field on ``/solve``/``/batch``
        /``/mutate`` payloads routes the request to that tenant's own
        service, ``GET /graphs`` lists the tenants, ``POST
        /graphs/load`` / ``POST /graphs/drop`` manage them at runtime,
        and ``GET /stats?graph=name`` scopes the instrument report.
        Without a registry those surfaces answer 400 and the server
        behaves exactly as before over its single default service.
    solver_threads:
        Width of the thread pool running ``service.submit``; defaults
        to the service's ``max_workers``.
    instruments:
        Shared obs registry for the ``server.*`` counters/timers.  When
        omitted (or given the null sink) the server creates a live
        private registry — ``/stats`` must always have real numbers.
    """

    def __init__(
        self,
        service: QueryService,
        *,
        registry: Optional[GraphRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        rate_limit_qps: float = 0.0,
        rate_limit_burst: float = 0.0,
        max_inflight: int = 64,
        pressure_threshold: Optional[int] = None,
        pressure_time_budget: float = 0.05,
        solver_threads: Optional[int] = None,
        instruments: Optional[InstrumentRegistry] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if pressure_threshold is not None and pressure_threshold < 1:
            raise ValueError(
                f"pressure_threshold must be >= 1, got {pressure_threshold}"
            )
        self.service = service
        self.registry = registry
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.pressure_threshold = pressure_threshold
        self.pressure_time_budget = pressure_time_budget
        self.limiter = RateLimiter(rate_limit_qps, rate_limit_burst)
        self.coalescer = InflightCoalescer()
        if instruments is None or not instruments.enabled:
            instruments = InstrumentRegistry()
        self.instruments = instruments
        self._active_solves = 0
        self._started_unix = time.time()
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set[asyncio.Task] = set()
        from concurrent.futures import ThreadPoolExecutor

        self._solver_pool = ThreadPoolExecutor(
            max_workers=solver_threads or service.max_workers,
            thread_name_prefix="ktg-server-solve",
        )
        self._requests = instruments.counter("server.requests")
        self._endpoint_counters = {
            name: instruments.counter(f"server.requests.{name}")
            for name in _ENDPOINTS
        }
        self._not_found = instruments.counter("server.not_found")
        self._http_errors = instruments.counter("server.http_errors")
        self._rate_limited = instruments.counter("server.rate_limited")
        self._deadline_rejected = instruments.counter("server.deadline_rejected")
        self._overload_rejected = instruments.counter("server.overload_rejected")
        self._pressure_degraded = instruments.counter("server.pressure_degraded")
        self._coalesced_followers = instruments.counter("server.coalesced_followers")
        self._solver_runs = instruments.counter("server.solver_runs")
        self._mutations = instruments.counter("server.mutations")
        self._degraded_responses = instruments.counter("server.degraded_responses")
        self._request_timer = instruments.timer("server.request_ms")
        self._solve_timer = instruments.timer("server.solve_request_ms")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (idempotent)."""
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — valid after :meth:`start`."""
        return (self.host, self.port)

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``ktg serve`` foreground path)."""
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, drain connections, shut solver threads down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = [task for task in self._connections if not task.done()]
        if pending:
            done, still_pending = await asyncio.wait(pending, timeout=5.0)
            for task in still_pending:
                task.cancel()
            if still_pending:
                await asyncio.gather(*still_pending, return_exceptions=True)
        # Solver threads must not outlive the server: the smoke job
        # asserts the process thread count returns to its baseline.
        self._solver_pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        peer = writer.get_extra_info("peername")
        peer_host = peer[0] if isinstance(peer, tuple) else "unknown"
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    self._http_errors.inc()
                    writer.write(
                        json_response(
                            exc.status, {"error": exc.detail}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                started = time.perf_counter()
                self._requests.inc()
                try:
                    response = await self._route(request, peer_host)
                except HttpError as exc:
                    self._http_errors.inc()
                    response = json_response(
                        exc.status,
                        {"error": exc.detail},
                        keep_alive=request.keep_alive,
                    )
                except ReproError as exc:
                    self._http_errors.inc()
                    response = json_response(
                        400, {"error": str(exc)}, keep_alive=request.keep_alive
                    )
                self._request_timer.observe_ms(
                    (time.perf_counter() - started) * 1000.0
                )
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, request: HttpRequest, peer_host: str) -> bytes:
        path, method = request.path, request.method
        if path == "/healthz":
            self._endpoint_counters["healthz"].inc()
            if method != "GET":
                raise HttpError(405, "healthz is GET-only")
            return json_response(
                200, {"status": "ok"}, keep_alive=request.keep_alive
            )
        if path == "/stats":
            self._endpoint_counters["stats"].inc()
            if method != "GET":
                raise HttpError(405, "stats is GET-only")
            return json_response(
                200,
                self.stats_payload(graph=request.query.get("graph")),
                keep_alive=request.keep_alive,
            )
        if path == "/solve":
            self._endpoint_counters["solve"].inc()
            if method != "POST":
                raise HttpError(405, "solve is POST-only")
            return await self._handle_solve(request, peer_host)
        if path == "/batch":
            self._endpoint_counters["batch"].inc()
            if method != "POST":
                raise HttpError(405, "batch is POST-only")
            return await self._handle_batch(request, peer_host)
        if path == "/mutate":
            self._endpoint_counters["mutate"].inc()
            if method != "POST":
                raise HttpError(405, "mutate is POST-only")
            return await self._handle_mutate(request)
        if path == "/graphs":
            self._endpoint_counters["graphs"].inc()
            if method != "GET":
                raise HttpError(405, "graphs is GET-only")
            registry = self._require_registry()
            return json_response(
                200,
                {"graphs": registry.describe(), "count": len(registry)},
                keep_alive=request.keep_alive,
            )
        if path == "/graphs/load":
            self._endpoint_counters["graphs"].inc()
            if method != "POST":
                raise HttpError(405, "graphs/load is POST-only")
            return await self._handle_graph_load(request)
        if path == "/graphs/drop":
            self._endpoint_counters["graphs"].inc()
            if method != "POST":
                raise HttpError(405, "graphs/drop is POST-only")
            return await self._handle_graph_drop(request)
        self._not_found.inc()
        raise HttpError(404, f"no route for {path!r}")

    # ------------------------------------------------------------------
    # Multi-graph registry
    # ------------------------------------------------------------------
    def _require_registry(self) -> GraphRegistry:
        if self.registry is None:
            raise HttpError(
                400, "this server has no graph registry (multi-graph serving is off)"
            )
        return self.registry

    def _service_for(self, payload: dict) -> tuple[QueryService, Optional[str]]:
        """Resolve the service a payload addresses (``graph`` field).

        Returns ``(service, graph_name)`` — the default service and
        ``None`` when the payload names no graph; 400 without a
        registry, 404 for an unknown name.
        """
        name = payload.get("graph")
        if name is None:
            return self.service, None
        if not isinstance(name, str) or not name:
            raise HttpError(400, "'graph' must be a non-empty string")
        registry = self._require_registry()
        try:
            return registry.get(name), name  # type: ignore[return-value]
        except UnknownGraphError as exc:
            raise HttpError(404, str(exc)) from exc

    async def _handle_graph_load(self, request: HttpRequest) -> bytes:
        payload = json_body(request)
        registry = self._require_registry()
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise HttpError(400, "'name' must be a non-empty string")
        profile = payload.get("profile")
        if not isinstance(profile, str) or not profile:
            raise HttpError(400, "'profile' must be a non-empty string")
        scale = payload.get("scale", 1.0)
        if isinstance(scale, bool) or not isinstance(scale, (int, float)):
            raise HttpError(400, "'scale' must be a number")
        seed = payload.get("seed")
        if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
            raise HttpError(400, "'seed' must be an integer")
        overrides: dict = {}
        if "shards" in payload:
            shards = payload["shards"]
            if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
                raise HttpError(400, "'shards' must be an integer >= 1")
            overrides["shards"] = shards
        if "algorithm" in payload:
            algorithm = payload["algorithm"]
            if not isinstance(algorithm, str) or not algorithm:
                raise HttpError(400, "'algorithm' must be a non-empty string")
            overrides["algorithm"] = algorithm

        # Dataset generation + service construction block; run them on
        # the solver pool like any other heavy work.
        load = functools.partial(
            registry.load,
            name,
            profile,
            scale=float(scale),
            seed=seed,
            **overrides,
        )
        loop = asyncio.get_running_loop()
        entry = await loop.run_in_executor(self._solver_pool, load)
        return json_response(
            200, dict(entry.describe(), loaded=True), keep_alive=request.keep_alive
        )

    async def _handle_graph_drop(self, request: HttpRequest) -> bytes:
        payload = json_body(request)
        registry = self._require_registry()
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise HttpError(400, "'name' must be a non-empty string")
        try:
            # close() drains the tenant's pools and releases any shard
            # segments — solver-pool work, not event-loop work.
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                self._solver_pool, functools.partial(registry.drop, name)
            )
        except UnknownGraphError as exc:
            raise HttpError(404, str(exc)) from exc
        return json_response(
            200, {"name": name, "dropped": True}, keep_alive=request.keep_alive
        )

    # ------------------------------------------------------------------
    # Solve path
    # ------------------------------------------------------------------
    def _client_id(self, request: HttpRequest, peer_host: str) -> str:
        return request.header("x-client-id") or peer_host

    async def _handle_solve(self, request: HttpRequest, peer_host: str) -> bytes:
        payload = json_body(request)
        client = self._client_id(request, peer_host)
        if not self.limiter.allow(client):
            self._rate_limited.inc()
            retry_after = self.limiter.retry_after_seconds(client)
            return json_response(
                429,
                {"error": "rate limited", "retry_after_ms": round(retry_after * 1000, 1)},
                keep_alive=request.keep_alive,
                extra_headers={"Retry-After": f"{max(retry_after, 0.001):.3f}"},
            )
        started = time.perf_counter()
        outcome = await self._admit_and_solve(request, payload, started)
        self._solve_timer.observe_ms((time.perf_counter() - started) * 1000.0)
        status, body = outcome
        return json_response(status, body, keep_alive=request.keep_alive)

    async def _handle_batch(self, request: HttpRequest, peer_host: str) -> bytes:
        payload = json_body(request)
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise HttpError(400, "'queries' must be a non-empty list")
        if not all(isinstance(entry, dict) for entry in queries):
            raise HttpError(400, "every batch entry must be an object")
        client = self._client_id(request, peer_host)
        # One token per query: a batch is priced like the requests it
        # replaces, so batching cannot be used to outrun the limiter.
        if not self.limiter.allow(client, tokens=float(len(queries))):
            self._rate_limited.inc()
            retry_after = self.limiter.retry_after_seconds(
                client, tokens=float(len(queries))
            )
            return json_response(
                429,
                {"error": "rate limited", "retry_after_ms": round(retry_after * 1000, 1)},
                keep_alive=request.keep_alive,
                extra_headers={"Retry-After": f"{max(retry_after, 0.001):.3f}"},
            )
        started = time.perf_counter()
        shared_deadline = _parse_deadline_ms(request, payload)
        shared_graph = payload.get("graph")

        async def one(entry: dict) -> dict:
            if shared_graph is not None and "graph" not in entry:
                entry = dict(entry, graph=shared_graph)
            try:
                status, body = await self._admit_and_solve(
                    request, entry, started, inherited_deadline_ms=shared_deadline
                )
            except HttpError as exc:
                return {"status": exc.status, "error": exc.detail}
            body["status"] = status
            return body

        results = await asyncio.gather(*(one(entry) for entry in queries))
        self._solve_timer.observe_ms((time.perf_counter() - started) * 1000.0)
        return json_response(
            200,
            {"results": list(results), "count": len(results)},
            keep_alive=request.keep_alive,
        )

    async def _admit_and_solve(
        self,
        request: HttpRequest,
        payload: dict,
        arrived: float,
        inherited_deadline_ms: Optional[float] = None,
    ) -> tuple[int, dict]:
        """Admission control + coalesced solve for one query payload."""
        service, graph_name = self._service_for(payload)
        query = _parse_query(payload)
        deadline_ms = _parse_deadline_ms(request, payload)
        if deadline_ms is None:
            deadline_ms = inherited_deadline_ms

        remaining: Optional[float] = None
        if deadline_ms is not None:
            remaining = deadline_ms / 1000.0 - (time.perf_counter() - arrived)
            if remaining <= 0:
                self._deadline_rejected.inc()
                return 503, {
                    "error": "deadline expired before solve started",
                    "deadline_ms": deadline_ms,
                }

        time_budget = payload.get("time_budget")
        if time_budget is not None and (
            isinstance(time_budget, bool) or not isinstance(time_budget, (int, float))
        ):
            raise HttpError(400, "'time_budget' must be a number (seconds)")
        node_budget = payload.get("node_budget")
        if node_budget is not None and (
            isinstance(node_budget, bool) or not isinstance(node_budget, int)
        ):
            raise HttpError(400, "'node_budget' must be an integer")

        # The cache key starts with the service's graph_id, so two
        # tenants' identical queries can never coalesce onto one solve.
        key = service.cache_key(query)
        future, is_leader = self.coalescer.join(key)
        if not is_leader:
            self._coalesced_followers.inc()
            try:
                if remaining is not None:
                    served = await asyncio.wait_for(
                        asyncio.shield(future), timeout=remaining
                    )
                else:
                    served = await future
            except asyncio.TimeoutError:
                self._deadline_rejected.inc()
                return 503, {
                    "error": "deadline expired awaiting coalesced solve",
                    "coalesced": True,
                }
            return 200, self._result_payload(
                served, coalesced=True, service=service, graph_name=graph_name
            )

        # Leader path: overload control, then the real solve.
        if self._active_solves >= self.max_inflight:
            self.coalescer.resolve(
                key, future, error=HttpError(503, "server overloaded")
            )
            self._overload_rejected.inc()
            return 503, {
                "error": "server overloaded",
                "inflight": self._active_solves,
                "retry_after_ms": 50.0,
            }

        pressure = (
            self.pressure_threshold is not None
            and self._active_solves >= self.pressure_threshold
        )
        effective_budget = math.inf
        if service.time_budget is not None:
            effective_budget = min(effective_budget, service.time_budget)
        if time_budget is not None:
            effective_budget = min(effective_budget, float(time_budget))
        if remaining is not None:
            effective_budget = min(effective_budget, remaining)
        if pressure:
            effective_budget = min(effective_budget, self.pressure_time_budget)
            self._pressure_degraded.inc()

        submit = functools.partial(
            service.submit,
            query,
            time_budget=None if math.isinf(effective_budget) else effective_budget,
            node_budget=node_budget,
        )
        loop = asyncio.get_running_loop()
        self._active_solves += 1
        try:
            served = await loop.run_in_executor(self._solver_pool, submit)
        except BaseException as exc:
            self.coalescer.resolve(key, future, error=exc)
            raise
        finally:
            self._active_solves -= 1
        if not served.from_cache:
            self._solver_runs.inc()
        self.coalescer.resolve(key, future, result=served)
        return 200, self._result_payload(
            served,
            coalesced=False,
            pressure=pressure,
            service=service,
            graph_name=graph_name,
        )

    # ------------------------------------------------------------------
    # Mutation path (epoch-mode services)
    # ------------------------------------------------------------------
    async def _handle_mutate(self, request: HttpRequest) -> bytes:
        """Apply one graph mutation through the service's epoch manager.

        Requires a ``QueryService(..., mutations=True)`` service; against
        a read-only one the :class:`~repro.core.errors.EpochError` the
        service raises surfaces as a 400 via the generic ``ReproError``
        handler.  The apply may wait on the epoch write gate (draining
        in-flight solves), so it runs in the solver pool — the event
        loop never blocks.
        """
        payload = json_body(request)
        op = payload.get("op")
        if op not in _MUTATION_OPS:
            raise HttpError(
                400, f"'op' must be one of {sorted(_MUTATION_OPS)}, got {op!r}"
            )
        for field in ("u", "v", "vertex"):
            if field in _MUTATION_OPS[op]:
                value = payload.get(field)
                if isinstance(value, bool) or not isinstance(value, int):
                    raise HttpError(400, f"'{field}' must be an integer")
        keywords = payload.get("keywords", [])
        if op in ("set_keywords", "add_vertex"):
            if not isinstance(keywords, list) or not all(
                isinstance(label, str) for label in keywords
            ):
                raise HttpError(400, "'keywords' must be a list of strings")

        service, _ = self._service_for(payload)
        if op == "add_edge":
            apply = functools.partial(service.add_edge, payload["u"], payload["v"])
        elif op == "remove_edge":
            apply = functools.partial(service.remove_edge, payload["u"], payload["v"])
        elif op == "set_keywords":
            apply = functools.partial(
                service.set_keywords, payload["vertex"], keywords
            )
        else:
            apply = functools.partial(service.add_vertex, keywords)

        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        new_vertex = await loop.run_in_executor(self._solver_pool, apply)
        self._mutations.inc()
        epoch_stats = service.epochs.stats()
        body = {
            "op": op,
            "applied": True,
            "graph_version": service.graph.version,
            "epoch_id": epoch_stats.epoch_id,
            "delta_depth": epoch_stats.delta_depth,
            "rotations": epoch_stats.rotations,
            "latency_ms": round((time.perf_counter() - started) * 1000.0, 3),
        }
        if op == "add_vertex":
            body["vertex"] = new_vertex
        return json_response(200, body, keep_alive=request.keep_alive)

    def _result_payload(
        self,
        served: ServiceResult,
        *,
        coalesced: bool,
        pressure: bool = False,
        service: Optional[QueryService] = None,
        graph_name: Optional[str] = None,
    ) -> dict:
        if service is None:
            service = self.service
        if served.degraded:
            self._degraded_responses.inc()
        payload = {
            "groups": [
                {"members": list(group.members), "coverage": group.coverage}
                for group in served.result.groups
            ],
            "exact": served.is_exact,
            "degraded": served.degraded,
            "from_cache": served.from_cache,
            "coalesced": coalesced,
            "latency_ms": round(served.latency_ms, 3),
            "algorithm": service.spec.name,
        }
        if graph_name is not None:
            payload["graph"] = graph_name
            payload["graph_id"] = service.graph_id
        if pressure:
            payload["pressure"] = True
        return payload

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats_payload(self, graph: Optional[str] = None) -> dict:
        """The ``GET /stats`` body: server + service + instruments.

        ``graph`` scopes the service half of the report to one registry
        tenant (``GET /stats?graph=name``); the server half and the
        registry listing are global either way.
        """
        if graph is None:
            report = self.service.instrument_report()
        else:
            service, _ = self._service_for({"graph": graph})
            report = service.instrument_report()
        if self.registry is not None:
            report["graphs"] = self.registry.describe()
        report["server"] = {
            "uptime_s": round(time.time() - self._started_unix, 3),
            "active_solves": self._active_solves,
            "inflight_coalesced": self.coalescer.inflight(),
            "coalesce_leaders": self.coalescer.leaders,
            "coalesce_followers": self.coalescer.followers,
            "rate_limit_qps": self.limiter.rate,
            "rate_limit_clients": len(self.limiter),
            "rate_limit_admitted": self.limiter.admitted,
            "rate_limit_rejected": self.limiter.rejected,
            "max_inflight": self.max_inflight,
            "counters": {
                counter.name: counter.value
                for counter in sorted(
                    self.instruments.counters(), key=lambda c: c.name
                )
                if counter.name.startswith("server.")
            },
        }
        return report

    def __repr__(self) -> str:
        return (
            f"KTGServer(address={self.address!r}, "
            f"service={self.service.spec.name!r}, "
            f"max_inflight={self.max_inflight})"
        )
