"""Tiny stdlib HTTP clients for the KTG server (tests, smoke, bench).

Two flavours:

* :func:`http_request` — blocking, built on :mod:`http.client`; one
  call, one response, connection closed.  What the tests and the CI
  smoke driver use.
* :func:`arequest` — asyncio, built on raw ``open_connection`` framing;
  what the open-loop load generator uses so thousands of in-flight
  requests can share one event loop without a thread per request.

Both return ``(status_code, decoded_json_or_None)``.
"""

from __future__ import annotations

import http.client
import json
from typing import Optional

import asyncio

__all__ = ["http_request", "arequest"]


def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    *,
    headers: Optional[dict[str, str]] = None,
    timeout: float = 30.0,
) -> tuple[int, Optional[dict]]:
    """One blocking request; returns ``(status, parsed_json_body)``."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        send_headers = {"Connection": "close"}
        if body is not None:
            send_headers["Content-Type"] = "application/json"
        if headers:
            send_headers.update(headers)
        connection.request(method, path, body=body, headers=send_headers)
        response = connection.getresponse()
        raw = response.read()
        decoded: Optional[dict] = None
        if raw:
            try:
                decoded = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = None
        return response.status, decoded
    finally:
        connection.close()


async def arequest(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    *,
    headers: Optional[dict[str, str]] = None,
    timeout: float = 30.0,
) -> tuple[int, Optional[dict]]:
    """One asyncio request over a fresh connection (open-loop client)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout
    )
    try:
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            "Connection: close",
        ]
        if body:
            lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(body)}")
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

        raw = await asyncio.wait_for(reader.read(), timeout=timeout)
        head, _, rest = raw.partition(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = status_line.split(" ")
        status = int(parts[1]) if len(parts) >= 2 and parts[1].isdigit() else 0
        decoded: Optional[dict] = None
        if rest:
            try:
                decoded = json.loads(rest.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = None
        return status, decoded
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
