"""Asyncio HTTP serving front end for KTG/DKTG queries.

:class:`repro.service.QueryService` is a library; this package puts it
on the wire.  One :class:`~repro.server.app.KTGServer` fronts one
service with:

* request routing — ``POST /solve``, ``POST /batch``, ``GET /stats``,
  ``GET /healthz`` over hand-rolled HTTP/1.1 framing
  (:mod:`repro.server.http`, stdlib-only);
* per-client token-bucket rate limiting
  (:mod:`repro.server.ratelimit`) answered with 429 + Retry-After;
* identical-query coalescing (:mod:`repro.server.coalesce`): N
  concurrent duplicates of one canonical query share a single
  in-flight solve;
* client deadline propagation into the solver's anytime
  ``time_budget`` machinery, and degraded-mode 503/partial responses
  under overload;
* per-endpoint metrics through the shared
  :class:`repro.obs.instruments.InstrumentRegistry` (``server.*``
  counters/timers, exported by ``GET /stats``).

Solves run on a thread pool off the event loop (``run_in_executor``),
leaning on the service's thread-safety contract.  ``ktg serve``
exposes the whole thing on the command line; ``python -m
repro.server.smoke`` is the CI smoke driver.  See ``docs/server.md``.
"""

from repro.server.app import KTGServer
from repro.server.client import arequest, http_request
from repro.server.coalesce import InflightCoalescer
from repro.server.http import HttpError, HttpRequest
from repro.server.ratelimit import RateLimiter, TokenBucket
from repro.server.runner import ServerThread

__all__ = [
    "KTGServer",
    "ServerThread",
    "InflightCoalescer",
    "RateLimiter",
    "TokenBucket",
    "HttpError",
    "HttpRequest",
    "arequest",
    "http_request",
]
