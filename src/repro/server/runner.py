"""Run a :class:`KTGServer` on a background event loop thread.

Tests, the CI smoke job and the load-generator bench all need the same
shape: bring a server up on an ephemeral port, drive requests at it
from the calling thread, then tear it down *completely* (no leaked
event loop, no leaked solver threads).  :class:`ServerThread` packages
that as a context manager::

    with ServerThread(server) as handle:
        status, payload = http_request(*handle.address, "GET", "/healthz")
    # server stopped, loop closed, threads joined

The event loop lives on the background thread; ``start``/``stop`` are
submitted to it with ``run_coroutine_threadsafe`` so the foreground
thread never touches loop internals directly.
"""

from __future__ import annotations

import threading
from typing import Optional

import asyncio

from repro.server.app import KTGServer

__all__ = ["ServerThread"]


class ServerThread:
    """Own one background loop thread running one started server."""

    def __init__(self, server: KTGServer, *, startup_timeout: float = 10.0) -> None:
        self.server = server
        self.startup_timeout = startup_timeout
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def start(self) -> "ServerThread":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="ktg-server-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self.startup_timeout):
            raise RuntimeError("server failed to start within the startup timeout")
        if self._startup_error is not None:
            raise RuntimeError("server startup failed") from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # surface bind errors to start()
                self._startup_error = exc
                return
            finally:
                self._ready.set()
            loop.run_forever()
            # stop() below stops the loop after the server has drained;
            # run the teardown's pending callbacks before closing.
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()
            self._loop = None

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), loop)
        future.result(timeout=30.0)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30.0)
        if thread.is_alive():  # pragma: no cover - diagnostic path
            raise RuntimeError("server loop thread failed to stop")
        self._thread = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
