"""Minimal asyncio HTTP/1.1 framing (stdlib only, no frameworks).

The serving front end needs exactly four things from HTTP: parse a
request line + headers + optional ``Content-Length`` body from an
:class:`asyncio.StreamReader`, render a response with a JSON body,
support keep-alive so a load generator can pipeline requests over one
connection, and fail fast (with a proper status code) on malformed or
oversized input.  That is what this module provides — deliberately not
a web framework: no routing, no middleware, no chunked encoding
(requests with ``Transfer-Encoding`` are rejected with 411/400), no
TLS.  Routing and admission control live in :mod:`repro.server.app`.

Limits are explicit constructor-style arguments on :func:`read_request`
so the app layer owns the policy: header blocks over
``max_header_bytes`` and bodies over ``max_body_bytes`` raise
:class:`HttpError` with 431/413, which the app maps to a response
instead of tearing the connection down silently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import parse_qsl, urlsplit

import asyncio

__all__ = [
    "HttpError",
    "HttpRequest",
    "read_request",
    "render_response",
    "json_body",
    "json_response",
    "STATUS_REASONS",
]

#: The subset of reason phrases this server emits.
STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 1024 * 1024


class HttpError(Exception):
    """A request that cannot be served, with the status to answer it."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 default keep-alive unless ``Connection: close``."""
        return self.headers.get("connection", "").lower() != "close"

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_header_bytes: int = _MAX_HEADER_BYTES,
    max_body_bytes: int = _MAX_BODY_BYTES,
) -> Optional[HttpRequest]:
    """Read one request; ``None`` on clean EOF before any bytes.

    Raises :class:`HttpError` on malformed framing (the caller answers
    with the error's status and closes the connection).
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpError(400, "connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(431, "header block too large") from exc
    if len(header_block) > max_header_bytes:
        raise HttpError(431, "header block too large")

    try:
        head = header_block.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise HttpError(400, "undecodable header block") from exc
    request_line, _, header_text = head.partition("\r\n")
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")

    headers: dict[str, str] = {}
    for line in header_text.split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpError(411, "chunked request bodies are not supported")

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "non-integer Content-Length") from exc
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise HttpError(413, f"body larger than {max_body_bytes} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "connection closed mid-body") from exc

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    request = HttpRequest(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
    )
    if version == "HTTP/1.0" and headers.get("connection", "").lower() != "keep-alive":
        request.headers["connection"] = "close"
    return request


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Optional[dict[str, str]] = None,
) -> bytes:
    """Serialize one HTTP/1.1 response to wire bytes."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int,
    payload: object,
    *,
    keep_alive: bool = True,
    extra_headers: Optional[dict[str, str]] = None,
) -> bytes:
    """Render *payload* as a JSON response body."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return render_response(
        status, body, keep_alive=keep_alive, extra_headers=extra_headers
    )


def json_body(request: HttpRequest) -> dict:
    """Decode the request body as a JSON object (400 on anything else)."""
    if not request.body:
        raise HttpError(400, "request body required")
    try:
        payload = json.loads(request.body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise HttpError(400, f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise HttpError(400, "request body must be a JSON object")
    return payload
