"""Per-client token-bucket rate limiting for the serving front end.

Classic token bucket: a client accumulates ``rate`` tokens per second
up to a ``burst`` ceiling, and each admitted request spends one token.
A client that sustains more than ``rate`` requests/second drains its
bucket and gets 429s until it backs off — short bursts up to ``burst``
are absorbed without rejection, which is the behaviour interactive
group-query clients actually need (a user refreshing a result page
twice is a burst, not abuse).

The limiter is designed for single-threaded use from the asyncio event
loop (the server calls :meth:`RateLimiter.allow` during admission,
before any executor hop), so it takes no locks.  The clock is
injectable for deterministic tests.

Memory is bounded: at most ``max_clients`` buckets are retained, and
the least-recently-seen bucket is evicted beyond that.  Evicting an
idle bucket is semantically harmless — an idle bucket refills to
``burst`` anyway, which is exactly the state a fresh bucket starts in.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

__all__ = ["TokenBucket", "RateLimiter"]


class TokenBucket:
    """One client's bucket: ``rate`` tokens/s refill, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst  # a new client starts with a full burst
        self.updated = now

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Spend *tokens* if available after refilling to *now*."""
        elapsed = now - self.updated
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False


class RateLimiter:
    """Keyed token buckets with LRU eviction of idle clients.

    ``rate <= 0`` disables limiting entirely (every request admitted) —
    the server's default, so unconfigured deployments behave like the
    bare service.
    """

    def __init__(
        self,
        rate: float,
        burst: float = 0.0,
        *,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate > 0 and burst <= 0:
            burst = max(1.0, rate)  # default burst: one second of rate
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self.admitted = 0
        self.rejected = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def allow(self, client: str, tokens: float = 1.0) -> bool:
        """Admit one request from *client* (always ``True`` if disabled)."""
        if not self.enabled:
            self.admitted += 1
            return True
        now = self._clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, now)
            self._buckets[client] = bucket
            if len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        if bucket.try_acquire(now, tokens):
            self.admitted += 1
            return True
        self.rejected += 1
        return False

    def retry_after_seconds(self, client: str, tokens: float = 1.0) -> float:
        """Seconds until *client* would next be admitted (hint for 429s)."""
        if not self.enabled:
            return 0.0
        bucket = self._buckets.get(client)
        if bucket is None or bucket.tokens >= tokens:
            return 0.0
        return (tokens - bucket.tokens) / bucket.rate

    def __len__(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:
        return (
            f"RateLimiter(rate={self.rate}, burst={self.burst}, "
            f"clients={len(self._buckets)}, admitted={self.admitted}, "
            f"rejected={self.rejected})"
        )
