"""Global-id facades over a set of shards: union view + routing oracle.

Workers in the sharded executor run the ordinary serial search over
**global** vertex ids; these two classes hide the partition:

* :class:`ShardUnionView` — an :class:`~repro.core.graph.AttributedGraph`-
  shaped read-only facade answering every per-vertex question (keywords,
  degree, neighbours) from that vertex's *home* shard.  Exact because
  ``radius >= 1`` replicates every home vertex's full neighbourhood.
* :class:`ShardRouter` — a :class:`~repro.index.base.DistanceOracle`
  answering every tenuity probe from the **source vertex's home shard**.
  The boundary-ball closure (see :mod:`repro.shard.partition`) makes a
  shard-local BFS from a home vertex distance-exact up to ``radius``
  hops, so for ``k <= radius`` the answer matches a global BFS bit for
  bit; a target absent from the source's shard is at distance
  ``> radius >= k`` and therefore tenuous.

The router deliberately never delegates ``is_tenuous`` to a shard-local
oracle's own two-ended probe: :class:`repro.index.bfs.BFSOracle` grows
the ball from whichever endpoint is cached or cheaper, and over a shard
that endpoint could be a boundary *replica* whose ball is incomplete.
Routing by the home vertex side-steps that trap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.errors import ShardError, UnknownVertexError
from repro.index.base import DistanceOracle
from repro.index.bfs import BFSOracle

from repro.shard.partition import ShardMap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.csr import CsrGraphView
    from repro.core.graph import KeywordTable

__all__ = ["ShardRouter", "ShardUnionView"]


class ShardUnionView:
    """Read-only global-id graph facade over per-shard CSR views.

    Exposes exactly the surface the worker-side solver stack touches:
    :class:`~repro.core.coverage.CoverageContext` (keyword table, vertex
    iteration, per-vertex keyword ids), the ordering strategies
    (degrees), and the ball-bitset engine (``num_vertices``, a stable
    ``version``).  Mutation is impossible — shards are frozen snapshots.
    """

    def __init__(self, views: Sequence["CsrGraphView"], shard_map: ShardMap) -> None:
        if len(views) != shard_map.num_shards:
            raise ShardError(
                f"shard map describes {shard_map.num_shards} shards, "
                f"got {len(views)} views"
            )
        if not views:
            raise ShardError("a shard union view needs at least one shard")
        self._views = list(views)
        self._map = shard_map
        #: Stable version stamp: the parent graph version the shards
        #: were cut from (ball caches key on it).
        self.version = shard_map.parent_version

    # -- identity ------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._map.num_vertices

    @property
    def num_edges(self) -> int:
        # Each edge (u, v) is counted once from u's home shard and once
        # from v's — exact because radius >= 1 keeps home degrees exact.
        return sum(self.degree(v) for v in self.vertices()) // 2

    @property
    def keyword_table(self) -> "KeywordTable":
        # Every shard snapshot embeds the full global label table (the
        # induced subgraphs share the parent KeywordTable), so any view
        # serves.
        return self._views[0].keyword_table

    def _home(self, vertex: int) -> tuple["CsrGraphView", int]:
        if not 0 <= vertex < self._map.num_vertices:
            raise UnknownVertexError(vertex)
        shard = self._map.home_of[vertex]
        return self._views[shard], self._map.home_local[vertex]

    # -- read API ------------------------------------------------------
    def vertices(self) -> range:
        return range(self._map.num_vertices)

    def keywords_of(self, vertex: int) -> frozenset[int]:
        view, local = self._home(vertex)
        return view.keywords_of(local)

    def keyword_labels(self, vertex: int) -> list[str]:
        return self.keyword_table.labels(self.keywords_of(vertex))

    def degree(self, vertex: int) -> int:
        view, local = self._home(vertex)
        return view.degree(local)

    def degrees(self) -> list[int]:
        return [self.degree(v) for v in self.vertices()]

    def neighbors(self, vertex: int) -> frozenset[int]:
        view, local = self._home(vertex)
        shard = self._map.home_of[vertex]
        ids = self._map.shard_global_ids[shard]
        return frozenset(ids[w] for w in view.neighbors(local))

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.neighbors(u)

    def __repr__(self) -> str:
        return (
            f"ShardUnionView(shards={self._map.num_shards}, "
            f"n={self._map.num_vertices}, radius={self._map.radius})"
        )


class ShardRouter(DistanceOracle):
    """Exact distance oracle routing every probe to its home shard.

    ``is_tenuous(u, v, k)`` translates both endpoints into **u's** home
    shard and consults that shard's memoised BFS ball of u; ``v`` absent
    from the shard means ``dist(u, v) > radius >= k``, i.e. tenuous.
    Valid only for ``k <= radius`` — the sharded executor rebuilds the
    shard set at a larger radius before a bigger-k query ever reaches
    the router, so a :class:`~repro.core.errors.ShardError` here is a
    programming-error backstop, not a runtime path.
    """

    name = "shard"

    def __init__(
        self,
        union: ShardUnionView,
        views: Sequence["CsrGraphView"],
        shard_map: ShardMap,
        *,
        oracles: Optional[Sequence[DistanceOracle]] = None,
    ) -> None:
        super().__init__(union)
        self._map = shard_map
        if oracles is None:
            oracles = [BFSOracle(view, graph_layout="csr") for view in views]
        self._oracles = list(oracles)
        # Lazily-built per-shard {global id: local id} tables for the
        # target-endpoint lookup (the source side uses home_local).
        self._local_of: list[Optional[dict[int, int]]] = [None] * shard_map.num_shards

    def _locals(self, shard: int) -> dict[int, int]:
        table = self._local_of[shard]
        if table is None:
            ids = self._map.shard_global_ids[shard]
            table = {vertex: i for i, vertex in enumerate(ids)}
            self._local_of[shard] = table
        return table

    def _check_radius(self, k: int) -> None:
        if k > self._map.radius:
            raise ShardError(
                f"tenuity k={k} exceeds the shard replication radius "
                f"{self._map.radius}; rebuild the shard set with a larger radius"
            )

    # -- DistanceOracle ------------------------------------------------
    def is_tenuous(self, u: int, v: int, k: int) -> bool:
        self.check_k(k)
        self.stats.probes += 1
        if u == v:
            return False
        if k == 0:
            return True
        self._check_radius(k)
        shard = self._map.home_of[u]
        local_u = self._map.home_local[u]
        local_v = self._locals(shard).get(v)
        if local_v is None:
            return True
        return local_v not in self._oracles[shard].within_k(local_u, k)

    def within_k(self, vertex: int, k: int) -> set[int]:
        self.check_k(k)
        if k == 0:
            return set()
        self._check_radius(k)
        shard = self._map.home_of[vertex]
        ids = self._map.shard_global_ids[shard]
        ball = self._oracles[shard].within_k(self._map.home_local[vertex], k)
        return {ids[w] for w in ball}

    def __repr__(self) -> str:
        return (
            f"ShardRouter(shards={self._map.num_shards}, "
            f"radius={self._map.radius}, n={self._map.num_vertices})"
        )
