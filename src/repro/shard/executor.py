"""Scatter-gather sharded branch-and-bound: per-shard fleets, one merge.

:class:`ShardedBranchAndBoundSolver` is the shard-aware sibling of
:class:`repro.core.parallel.ParallelBranchAndBoundSolver`.  The root
frontier is split exactly the same way, but each root branch is
**scattered to the home shard of its root vertex**: every shard runs
its own worker fleet over its own shared-memory CSR segment, probing
distances through the :class:`~repro.shard.router.ShardRouter` (exact
for ``k <= radius``, see :mod:`repro.shard.partition`).

The gather side is the existing ordered-replay merge: outcomes fold
into one :class:`~repro.core.results.TopNPool` in global root order,
and the merged threshold of the maximal **contiguous position prefix**
is broadcast through one floor cell shared by *every* shard's fleet —
the cross-shard extension of the incumbent-floor protocol whose
exactness proof lives in :mod:`repro.core.parallel`.  Because each
worker reproduces the serial subtree bit for bit (same candidates,
same filters, same oracle answers) and the replay order equals root
order, ``solve()`` returns groups **and** a ``SearchStats`` ledger
bit-identical to the unsharded engines (stats require
``bound_broadcast=False`` for schedule invariance, as ever).

Queries with ``tenuity > radius`` transparently rebuild the shard set
at the larger radius; a ``graph.version`` bump does the same.  Both
rebuilds drain the fleets before unlinking segments.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.core.branch_and_bound import BranchAndBoundSolver, KTGResult, SearchStats
from repro.core.coverage import CoverageContext
from repro.core.csr import CsrSnapshot
from repro.core.errors import IndexBuildError, ShardError
from repro.core.graph import AttributedGraph
from repro.core.parallel import (
    EXECUTORS,
    _FloorBox,
    _RecordingFloorPool,
    _SharedFloor,
    _SubproblemOutcome,
    _replay,
    _solve_subtree,
    _strategy_spec,
    aggregate_subproblem_stats,
    root_frontier,
)
from repro.core.query import KTGQuery
from repro.core.results import TopNPool
from repro.core.strategies import OrderingStrategy, strategy_by_name
from repro.index.base import DistanceOracle
from repro.kernels.engine import resolve_distance_engine
from repro.obs.instruments import NULL_REGISTRY, InstrumentRegistry

from repro.shard.partition import (
    DEFAULT_SHARD_RADIUS,
    ShardMap,
    ShardSet,
    build_shard_set,
)
from repro.shard.router import ShardRouter, ShardUnionView

__all__ = ["ShardedBranchAndBoundSolver", "ShardedKTGResult"]


# ----------------------------------------------------------------------
# Process-pool plumbing.  Every worker — regardless of which shard's
# fleet it belongs to — attaches ALL shard segments: a subtree rooted in
# shard s still contains candidates homed anywhere, and the router
# answers each probe from that vertex's own home shard.  Attachment is
# zero-copy, so "all segments" costs name lookups, not memory.
# ----------------------------------------------------------------------
_SHARD_WORKER: Optional[dict] = None


def _shard_worker_init(
    segment_names: Sequence[str],
    shard_map: ShardMap,
    strategy: Optional[OrderingStrategy],
    strategy_spec: Optional[tuple[str, dict]],
    options: dict,
    floor_cell: Any,
) -> None:
    global _SHARD_WORKER
    snapshots: list[CsrSnapshot] = []
    try:
        for name in segment_names:
            snapshots.append(CsrSnapshot.attach(name))
        views = [snapshot.view() for snapshot in snapshots]
        union = ShardUnionView(views, shard_map)
        router = ShardRouter(union, views, shard_map)
        if strategy_spec is not None:
            strategy = strategy_by_name(strategy_spec[0], union, **strategy_spec[1])
        _SHARD_WORKER = {
            "solver": BranchAndBoundSolver(
                union, oracle=router, strategy=strategy, **options
            ),
            "floor": _SharedFloor(floor_cell),
            "context_key": None,
            "context": None,
            "snapshots": snapshots,
        }
    except BaseException:
        # Same discipline as the jobs engine: a worker dying mid-init
        # must close its mappings or the owner's unlink cannot empty
        # /dev/shm (the CI leak check catches exactly this).
        for snapshot in snapshots:
            snapshot.close()
        raise


def _shard_worker_run(
    chunk: Sequence[int],
    query: KTGQuery,
    initial: Sequence[int],
    top_n: int,
    deadline: Optional[float],
    node_budget: Optional[int],
) -> list[_SubproblemOutcome]:
    assert _SHARD_WORKER is not None, "shard worker initializer did not run"
    solver: BranchAndBoundSolver = _SHARD_WORKER["solver"]
    solver.node_budget = node_budget
    floor: _SharedFloor = _SHARD_WORKER["floor"]
    if _SHARD_WORKER["context_key"] != query.keywords:
        _SHARD_WORKER["context"] = CoverageContext(solver.graph, query.keywords)
        _SHARD_WORKER["context_key"] = query.keywords
    context: CoverageContext = _SHARD_WORKER["context"]
    outcomes = []
    for position in chunk:
        pool = _RecordingFloorPool(top_n, floor.read)
        stats = _solve_subtree(solver, query, context, initial, position, pool, deadline)
        outcomes.append(_SubproblemOutcome(position, pool.offers, stats))
    return outcomes


# ----------------------------------------------------------------------
# Result type
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardedKTGResult(KTGResult):
    """A :class:`KTGResult` plus the sharded engine's provenance."""

    shards: int = 1
    radius: int = DEFAULT_SHARD_RADIUS
    executor: str = "inline"
    subproblems: int = 0
    worker_stats: tuple[SearchStats, ...] = field(compare=False, default_factory=tuple)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class ShardedBranchAndBoundSolver:
    """Exact top-N KTG solver over a community-partitioned graph.

    Parameters mirror :class:`~repro.core.parallel.ParallelBranchAndBoundSolver`
    plus:

    num_shards:
        Requested partition width.  The effective width is
        ``min(num_shards, n)`` (empty bins are dropped).
    radius:
        Boundary-replication radius (k-ball closure).  Queries with
        ``tenuity > radius`` rebuild the shard set at that tenuity —
        transparent but costly, so size *radius* to the workload.
    executor / jobs_per_shard:
        ``"process"`` spawns one :class:`ProcessPoolExecutor` **per
        shard** with *jobs_per_shard* workers, every worker attached to
        all shard segments by name (zero-copy).  ``"thread"`` uses one
        shared pool of ``shards * jobs_per_shard`` threads over
        in-process shard views; ``"inline"`` runs the same schedule on
        the caller thread (deterministic broadcasts; the property-test
        reference).

    Groups are bit-identical to the serial solver for every strategy,
    distance engine and kernel backend; the aggregated ``SearchStats``
    ledger additionally matches the jobs engine (and is schedule
    invariant) when ``bound_broadcast=False``.  Budgets apply per
    subproblem, exactly as in the jobs engine.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        oracle: Optional[DistanceOracle] = None,
        strategy: Optional[OrderingStrategy] = None,
        *,
        num_shards: int = 2,
        radius: int = DEFAULT_SHARD_RADIUS,
        executor: str = "inline",
        jobs_per_shard: int = 1,
        keyword_pruning: bool = True,
        kline_filtering: bool = True,
        use_union_bound: bool = False,
        node_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
        bound_broadcast: bool = True,
        chunk_size: Optional[int] = None,
        instruments: InstrumentRegistry = NULL_REGISTRY,
        distance_engine: str = "oracle",
        kernel=None,
        graph_layout: str = "adjacency",
        kernel_backend: str = "auto",
    ) -> None:
        if num_shards < 1:
            raise ShardError(f"num_shards must be >= 1, got {num_shards}")
        if radius < 1:
            raise ShardError(f"radius must be >= 1, got {radius}")
        if jobs_per_shard < 1:
            raise ShardError(f"jobs_per_shard must be >= 1, got {jobs_per_shard}")
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if not isinstance(graph, AttributedGraph):
            raise ShardError(
                "sharding requires a mutable AttributedGraph, not a frozen view"
            )
        self.num_shards = num_shards
        self.radius = radius
        self.executor_kind = executor
        self.jobs_per_shard = jobs_per_shard
        self.bound_broadcast = bound_broadcast
        self.chunk_size = chunk_size
        self.instruments = instruments
        self._template = BranchAndBoundSolver(
            graph,
            oracle=oracle,
            strategy=strategy,
            keyword_pruning=keyword_pruning,
            kline_filtering=kline_filtering,
            use_union_bound=use_union_bound,
            node_budget=node_budget,
            time_budget=time_budget,
            distance_engine=distance_engine,
            kernel=kernel,
            graph_layout=graph_layout,
            kernel_backend=kernel_backend,
        )
        self._shard_set: Optional[ShardSet] = None
        # Worker stack over the local shard views (inline/thread).
        self._stack: Optional[dict] = None
        self._pools: Optional[list[Executor]] = None
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._floor_cell: Any = None
        # Serializes solves: the floor cell, shard set and pools are
        # shared engine state (same contract as the jobs engine).
        self._fleet_lock = threading.Lock()
        self._tasks_counter = instruments.counter("shard.tasks")
        self._subproblem_counter = instruments.counter("shard.subproblems")
        self._broadcast_counter = instruments.counter("shard.bound_broadcasts")
        self._rebuild_counter = instruments.counter("shard.rebuilds")

    # ------------------------------------------------------------------
    @property
    def graph(self) -> AttributedGraph:
        return self._template.graph

    @property
    def oracle(self) -> DistanceOracle:
        return self._template.oracle

    @property
    def strategy(self) -> OrderingStrategy:
        return self._template.strategy

    @property
    def algorithm_name(self) -> str:
        return self._template.algorithm_name

    @property
    def shard_set(self) -> Optional[ShardSet]:
        """The currently materialized shards (``None`` before first use)."""
        return self._shard_set

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain the fleets and release every shard segment (idempotent)."""
        with self._fleet_lock:
            self._teardown_fleet()

    def __enter__(self) -> "ShardedBranchAndBoundSolver":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def solve(
        self,
        query: KTGQuery,
        candidates: Optional[Sequence[int]] = None,
        *,
        node_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> ShardedKTGResult:
        """Answer *query* across the per-shard fleets.

        Root preparation (coverage context, candidate selection, initial
        order) happens on the coordinator against the full graph — it is
        cheap and keeps the scattered subtrees' inputs bit-identical to
        the serial root loop.
        """
        template = self._template
        if template.oracle.is_stale():
            raise IndexBuildError(
                "the distance oracle was built on an older version of the "
                "graph; call oracle.rebuild() before solving"
            )
        nb = node_budget if node_budget is not None else template.node_budget
        tb = time_budget if time_budget is not None else template.time_budget
        started = time.perf_counter()
        root_stats = SearchStats()
        context = query.cached_context(template.graph)
        template._last_context = context
        initial = template._initial_candidates(query, context, candidates, root_stats)
        initial = template.strategy.initial_order(initial, context)

        frontier = root_frontier(initial, query.group_size)
        if query.group_size == 1 or len(frontier) == 0:
            return self._wrap_serial(query, candidates, nb, tb)

        deadline = started + tb if tb is not None else None
        with self._fleet_lock:
            shard_set = self._ensure_shards(query.tenuity)
            chunks = self._chunk(frontier, initial, shard_set.shard_map)
            self._tasks_counter.inc(len(chunks))
            self._subproblem_counter.inc(len(frontier))
            if self.executor_kind == "inline":
                outcomes, merged, accepted, broadcasts = self._run_inline(
                    frontier, query, initial, context, deadline, nb
                )
            elif self.executor_kind == "thread":
                outcomes, merged, accepted, broadcasts = self._run_threads(
                    chunks, frontier, query, initial, context, deadline, nb
                )
            else:
                outcomes, merged, accepted, broadcasts = self._run_processes(
                    chunks, frontier, query, initial, deadline, nb
                )
        self._broadcast_counter.inc(broadcasts)

        outcomes.sort(key=lambda outcome: outcome.position)
        stats = aggregate_subproblem_stats(root_stats, outcomes, accepted)
        stats.elapsed_seconds = time.perf_counter() - started
        return ShardedKTGResult(
            query=query,
            algorithm=template.algorithm_name,
            groups=tuple(merged.best()),
            stats=stats,
            shards=self._shard_set.num_shards if self._shard_set else 1,
            radius=self._shard_set.radius if self._shard_set else self.radius,
            executor=self.executor_kind,
            subproblems=len(frontier),
            worker_stats=tuple(outcome.stats for outcome in outcomes),
        )

    # ------------------------------------------------------------------
    def _wrap_serial(
        self,
        query: KTGQuery,
        candidates: Optional[Sequence[int]],
        node_budget: Optional[int],
        time_budget: Optional[float],
    ) -> ShardedKTGResult:
        serial = self._clone_template()
        serial.node_budget = node_budget
        serial.time_budget = time_budget
        result = serial.solve(query, candidates)
        return ShardedKTGResult(
            query=result.query,
            algorithm=result.algorithm,
            groups=result.groups,
            stats=result.stats,
            shards=self._shard_set.num_shards if self._shard_set else self.num_shards,
            radius=self._shard_set.radius if self._shard_set else self.radius,
            executor=self.executor_kind,
            subproblems=0,
            worker_stats=(result.stats,),
        )

    def _clone_template(self) -> BranchAndBoundSolver:
        template = self._template
        return BranchAndBoundSolver(
            template.graph,
            oracle=template.oracle,
            strategy=template.strategy,
            keyword_pruning=template.keyword_pruning,
            kline_filtering=template.kline_filtering,
            use_union_bound=template.use_union_bound,
            node_budget=template.node_budget,
            time_budget=template.time_budget,
            distance_engine=template.distance_engine,
            kernel=template.kernel,
            graph_layout=template.graph_layout,
            kernel_backend=template.kernel_backend,
        )

    # ------------------------------------------------------------------
    def _ensure_shards(self, tenuity: int) -> ShardSet:
        """Return a shard set valid for *tenuity*, rebuilding if needed."""
        needed = max(1, tenuity)
        version = self.graph.version
        shard_set = self._shard_set
        if shard_set is not None and (
            shard_set.shard_map.parent_version != version
            or shard_set.radius < needed
        ):
            self._teardown_fleet()
            shard_set = None
        if shard_set is None:
            shard_set = build_shard_set(
                self.graph,
                self.num_shards,
                radius=max(self.radius, needed),
                instruments=self.instruments,
            )
            self._shard_set = shard_set
            self._rebuild_counter.inc(1)
        return shard_set

    def _teardown_fleet(self) -> None:
        """Drain pools, then release segments (shutdown-before-unlink)."""
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=True)
            self._pools = None
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        self._floor_cell = None
        self._stack = None
        if self._shard_set is not None:
            self._shard_set.release()
            self._shard_set = None

    # ------------------------------------------------------------------
    def _local_stack(self, shard_set: ShardSet) -> dict:
        """Router + union view over the in-process shard views.

        Inline and thread fleets share one stack (and one ball cache):
        the router's per-shard BFS memos and the kernel's LRU are both
        lock-protected, and ball values are immutable.
        """
        if self._stack is None:
            template = self._template
            views = shard_set.views()
            union = ShardUnionView(views, shard_set.shard_map)
            router = ShardRouter(union, views, shard_set.shard_map)
            kernel = resolve_distance_engine(
                template.distance_engine,
                router,
                None,
                "adjacency",
                template.kernel_backend,
            )
            self._stack = {
                "union": union,
                "router": router,
                "kernel": kernel,
            }
        return self._stack

    def _worker_solver(self, stack: dict) -> BranchAndBoundSolver:
        template = self._template
        return BranchAndBoundSolver(
            stack["union"],
            oracle=stack["router"],
            strategy=template.strategy,
            keyword_pruning=template.keyword_pruning,
            kline_filtering=template.kline_filtering,
            use_union_bound=template.use_union_bound,
            node_budget=template.node_budget,
            time_budget=template.time_budget,
            distance_engine=template.distance_engine,
            kernel=stack["kernel"],
            graph_layout="adjacency",
            kernel_backend=template.kernel_backend,
        )

    def _worker_options(self) -> dict:
        template = self._template
        return {
            "keyword_pruning": template.keyword_pruning,
            "kline_filtering": template.kline_filtering,
            "use_union_bound": template.use_union_bound,
            "distance_engine": template.distance_engine,
            "kernel_backend": template.kernel_backend,
            # Over a router-backed union view the ball engine must grow
            # balls through oracle.within_k, never a CSR snapshot of the
            # (non-materialized) union graph.
            "graph_layout": "adjacency",
        }

    def _chunk(
        self, frontier: range, initial: Sequence[int], shard_map: ShardMap
    ) -> list[tuple[int, list[int]]]:
        """Root positions grouped by the home shard of their root vertex."""
        per_shard: dict[int, list[int]] = {}
        for position in frontier:
            shard = shard_map.home_of[initial[position]]
            per_shard.setdefault(shard, []).append(position)
        chunks: list[tuple[int, list[int]]] = []
        for shard in sorted(per_shard):
            positions = per_shard[shard]
            size = self.chunk_size
            if size is None:
                size = max(1, -(-len(positions) // (self.jobs_per_shard * 4)))
            for i in range(0, len(positions), size):
                chunks.append((shard, positions[i : i + size]))
        return chunks

    # -- inline ---------------------------------------------------------
    def _run_inline(
        self,
        frontier: range,
        query: KTGQuery,
        initial: Sequence[int],
        context: CoverageContext,
        deadline: Optional[float],
        node_budget: Optional[int],
    ) -> tuple[list[_SubproblemOutcome], TopNPool, int, int]:
        # Inline runs positions in global root order regardless of shard
        # affinity: completion order == root order, so the broadcast
        # floor tracks the serial threshold as tightly as possible.
        stack = self._local_stack(self._shard_set)  # type: ignore[arg-type]
        solver = self._worker_solver(stack)
        solver.node_budget = node_budget
        floor = _FloorBox()
        merged = TopNPool(query.top_n)
        outcomes: list[_SubproblemOutcome] = []
        accepted = 0
        broadcasts = 0
        for position in frontier:
            pool = _RecordingFloorPool(query.top_n, floor.read)
            stats = _solve_subtree(solver, query, context, initial, position, pool, deadline)
            outcome = _SubproblemOutcome(position, pool.offers, stats)
            outcomes.append(outcome)
            accepted += _replay(merged, [outcome])
            if self.bound_broadcast and merged.threshold > floor.read():
                floor.write(merged.threshold)
                broadcasts += 1
        return outcomes, merged, accepted, broadcasts

    # -- thread ---------------------------------------------------------
    def _run_threads(
        self,
        chunks: list[tuple[int, list[int]]],
        frontier: range,
        query: KTGQuery,
        initial: Sequence[int],
        context: CoverageContext,
        deadline: Optional[float],
        node_budget: Optional[int],
    ) -> tuple[list[_SubproblemOutcome], TopNPool, int, int]:
        if self._thread_pool is None:
            self._floor_cell = _FloorBox()
            self._thread_pool = ThreadPoolExecutor(
                max_workers=max(1, self.num_shards * self.jobs_per_shard),
                thread_name_prefix="ktg-shard",
            )
        floor: _FloorBox = self._floor_cell
        floor.write(0.0)
        stack = self._local_stack(self._shard_set)  # type: ignore[arg-type]
        solvers = [self._worker_solver(stack) for _ in range(len(chunks))]
        for solver in solvers:
            solver.node_budget = node_budget

        def run_chunk(index: int) -> list[_SubproblemOutcome]:
            solver = solvers[index]
            results = []
            for position in chunks[index][1]:
                local = _RecordingFloorPool(query.top_n, floor.read)
                stats = _solve_subtree(
                    solver, query, context, initial, position, local, deadline
                )
                results.append(_SubproblemOutcome(position, local.offers, stats))
            return results

        futures = [self._thread_pool.submit(run_chunk, i) for i in range(len(chunks))]
        return self._gather(futures, frontier, query, floor)

    # -- process --------------------------------------------------------
    def _ensure_process_pools(self, shard_set: ShardSet) -> list[Executor]:
        if self._pools is not None:
            return self._pools
        import multiprocessing

        template = self._template
        names = shard_set.share()
        self._floor_cell = multiprocessing.Value("d", 0.0)
        spec = _strategy_spec(template.strategy)
        pools: list[Executor] = []
        try:
            for _ in range(shard_set.num_shards):
                pools.append(
                    ProcessPoolExecutor(
                        max_workers=self.jobs_per_shard,
                        initializer=_shard_worker_init,
                        initargs=(
                            names,
                            shard_set.shard_map,
                            None if spec is not None else template.strategy,
                            spec,
                            self._worker_options(),
                            self._floor_cell,
                        ),
                    )
                )
        except BaseException:
            for pool in pools:
                pool.shutdown(wait=True)
            # Fleet construction failing halfway must not strand the
            # shared segments until close().
            shard_set.release()
            self._shard_set = None
            raise
        self._pools = pools
        return pools

    def _run_processes(
        self,
        chunks: list[tuple[int, list[int]]],
        frontier: range,
        query: KTGQuery,
        initial: Sequence[int],
        deadline: Optional[float],
        node_budget: Optional[int],
    ) -> tuple[list[_SubproblemOutcome], TopNPool, int, int]:
        shard_set = self._shard_set
        assert shard_set is not None
        pools = self._ensure_process_pools(shard_set)
        floor = _SharedFloor(self._floor_cell)
        floor.write(0.0)
        futures = [
            pools[shard].submit(
                _shard_worker_run,
                positions,
                query,
                list(initial),
                query.top_n,
                deadline,
                node_budget,
            )
            for shard, positions in chunks
        ]
        return self._gather(futures, frontier, query, floor)

    # -- gather ---------------------------------------------------------
    def _gather(
        self,
        futures: list,
        frontier: range,
        query: KTGQuery,
        floor: Any,
    ) -> tuple[list[_SubproblemOutcome], TopNPool, int, int]:
        """Ordered-replay merge over the combined per-shard futures.

        Identical protocol to the jobs engine, tracked per *position*
        instead of per chunk: shard-affine chunks are not contiguous in
        root order, so the prefix pointer walks positions directly.
        """
        merged = TopNPool(query.top_n)
        done: dict[int, _SubproblemOutcome] = {}
        order = list(frontier)
        next_index = 0
        accepted = 0
        broadcasts = 0
        for future in as_completed(futures):
            for outcome in future.result():
                done[outcome.position] = outcome
            # Advance the contiguous completed prefix and broadcast its
            # merged threshold — the only bound provably at or below the
            # serial threshold for every still-running subproblem.
            while next_index < len(order) and order[next_index] in done:
                accepted += _replay(merged, [done[order[next_index]]])
                next_index += 1
            if self.bound_broadcast and merged.threshold > floor.read():
                floor.write(merged.threshold)
                broadcasts += 1
        outcomes = [done[position] for position in order]
        return outcomes, merged, accepted, broadcasts

    def __repr__(self) -> str:
        return (
            f"ShardedBranchAndBoundSolver({self.algorithm_name}, "
            f"shards={self.num_shards}x{self.jobs_per_shard} "
            f"{self.executor_kind}, radius={self.radius}, "
            f"broadcast={self.bound_broadcast})"
        )
