"""Sharded multi-graph serving: partitioning, routing, scatter-gather.

Three pieces (see ``docs/sharding.md`` for the full protocol):

* :mod:`repro.shard.partition` — balanced label-propagation communities
  with k-hop boundary-ball replication, one frozen CSR snapshot (and
  optionally one shared-memory segment) per shard;
* :mod:`repro.shard.router` — global-id graph facade + exact distance
  oracle routing every probe to the source vertex's home shard;
* :mod:`repro.shard.executor` — per-shard solver fleets folded through
  the ordered-replay merge of :mod:`repro.core.parallel`, bit-identical
  to unsharded solving;
* :mod:`repro.shard.registry` — many named graphs, each with its own
  :class:`~repro.service.QueryService` and a stable ``graph_id``.
"""

from repro.shard.executor import ShardedBranchAndBoundSolver, ShardedKTGResult
from repro.shard.partition import (
    DEFAULT_SHARD_RADIUS,
    Shard,
    ShardMap,
    ShardSet,
    build_shard_set,
    partition_vertices,
    propagate_labels,
)
from repro.shard.registry import GraphRegistry, RegisteredGraph
from repro.shard.router import ShardRouter, ShardUnionView

__all__ = [
    "DEFAULT_SHARD_RADIUS",
    "GraphRegistry",
    "RegisteredGraph",
    "Shard",
    "ShardMap",
    "ShardSet",
    "ShardRouter",
    "ShardUnionView",
    "ShardedBranchAndBoundSolver",
    "ShardedKTGResult",
    "build_shard_set",
    "partition_vertices",
    "propagate_labels",
]
