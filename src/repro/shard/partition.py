"""Community partitioning with k-hop boundary-ball replication.

One graph becomes ``num_shards`` shards.  Every vertex has exactly one
**home** shard (a balanced label-propagation community), and each shard
additionally **replicates** every vertex within ``radius`` hops of its
home set.  The resulting induced subgraph has a crucial property:

    For any home vertex ``v`` and any ``k <= radius``, every shortest
    path of length ``<= radius`` starting at ``v`` lies entirely inside
    the shard, so a shard-local BFS from ``v`` is distance-exact up to
    depth ``radius``.

That closure is what lets :class:`repro.shard.router.ShardRouter`
answer every tenuity probe from the *source vertex's home shard* and
still be exact — the correctness linchpin of the scatter-gather
executor.  ``radius >= 1`` is mandatory: it additionally guarantees
every edge ``(u, v)`` appears in both endpoints' home shards, so
degrees and neighbourhoods of home vertices are exact too.

Shards are materialized as frozen CSR snapshots
(:class:`repro.core.csr.CsrSnapshot`).  Because the induced subgraph
shares its parent's :class:`~repro.core.graph.KeywordTable`, every
shard snapshot embeds the *global* label table and packs per-vertex
masks by global keyword id — worker-side coverage contexts are
bit-identical to the parent's without any keyword remapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.csr import CsrSnapshot
from repro.core.errors import ShardError
from repro.core.graph import AttributedGraph
from repro.obs.instruments import NULL_REGISTRY, InstrumentRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.csr import CsrGraphView

__all__ = [
    "DEFAULT_SHARD_RADIUS",
    "Shard",
    "ShardMap",
    "ShardSet",
    "build_shard_set",
    "partition_vertices",
    "propagate_labels",
]

#: Default boundary-replication radius.  Covers tenuity k <= 2 (the
#: paper's common range) without a rebuild; larger-k queries trigger a
#: transparent rebuild at the larger radius.
DEFAULT_SHARD_RADIUS = 2

#: Label-propagation round cap.  Synchronous updates can oscillate on
#: bipartite structures; the cap keeps termination (and determinism)
#: unconditional.
MAX_LABEL_ROUNDS = 20


def _bump(name: str, amount: int, instruments: InstrumentRegistry) -> None:
    if amount:
        instruments.counter(f"shard.{name}").inc(amount)


def propagate_labels(
    graph: AttributedGraph, *, max_rounds: int = MAX_LABEL_ROUNDS
) -> list[int]:
    """Synchronous label propagation with deterministic tie-breaks.

    Labels start as vertex ids; each round every vertex adopts the most
    frequent label among its neighbours (ties -> smallest label).
    Isolated vertices keep their own label.  Updates read the previous
    round's labels, so the result is schedule-independent.
    """
    labels = list(range(graph.num_vertices))
    for _ in range(max_rounds):
        changed = False
        fresh = list(labels)
        for v in graph.vertices():
            neighbours = graph.neighbors(v)
            if not neighbours:
                continue
            counts: dict[int, int] = {}
            for w in neighbours:
                label = labels[w]
                counts[label] = counts.get(label, 0) + 1
            best = min(counts.items(), key=lambda item: (-item[1], item[0]))[0]
            if best != labels[v]:
                fresh[v] = best
                changed = True
        labels = fresh
        if not changed:
            break
    return labels


def partition_vertices(
    graph: AttributedGraph,
    num_shards: int,
    *,
    max_rounds: int = MAX_LABEL_ROUNDS,
) -> list[list[int]]:
    """Home sets: label-propagation communities balanced across shards.

    Communities larger than ``ceil(n / num_shards)`` are split into
    contiguous slices first (one giant community must not serialize the
    fleet), then greedily packed largest-first into the currently
    smallest bin.  Empty bins are dropped, so the effective shard count
    is ``min(num_shards, n)`` when communities are plentiful.  Fully
    deterministic for a given graph.
    """
    if num_shards < 1:
        raise ShardError(f"num_shards must be >= 1, got {num_shards}")
    n = graph.num_vertices
    if n == 0:
        return []
    communities: dict[int, list[int]] = {}
    for v, label in enumerate(propagate_labels(graph, max_rounds=max_rounds)):
        communities.setdefault(label, []).append(v)
    target = -(-n // num_shards)
    pieces: list[list[int]] = []
    for label in sorted(communities):
        members = communities[label]  # ascending vertex ids
        for i in range(0, len(members), target):
            pieces.append(members[i : i + target])
    pieces.sort(key=lambda piece: (-len(piece), piece[0]))
    bins: list[list[int]] = [[] for _ in range(num_shards)]
    sizes = [0] * num_shards
    for piece in pieces:
        best = min(range(num_shards), key=lambda b: (sizes[b], b))
        bins[best].extend(piece)
        sizes[best] += len(piece)
    return [sorted(b) for b in bins if b]


def _ball(graph: AttributedGraph, sources: Sequence[int], radius: int) -> set[int]:
    """Vertices within *radius* hops of the source set (sources included)."""
    seen = set(sources)
    frontier = list(sources)
    for _ in range(radius):
        grown: list[int] = []
        for v in frontier:
            for w in graph.neighbors(v):
                if w not in seen:
                    seen.add(w)
                    grown.append(w)
        if not grown:
            break
        frontier = grown
    return seen


@dataclass(frozen=True)
class ShardMap:
    """Picklable vertex -> shard routing tables (ships to process workers).

    ``home_of[v]`` is v's home shard, ``home_local[v]`` its local id
    there; ``shard_global_ids[s][i]`` maps shard-local id ``i`` back to
    the global vertex id.  The adjacency itself never travels — workers
    attach the shared CSR segments by name.
    """

    num_vertices: int
    radius: int
    parent_version: int
    home_of: tuple[int, ...]
    home_local: tuple[int, ...]
    shard_global_ids: tuple[tuple[int, ...], ...]

    @property
    def num_shards(self) -> int:
        return len(self.shard_global_ids)


@dataclass
class Shard:
    """One materialized shard: home set, replicated ball, CSR snapshot."""

    index: int
    home: tuple[int, ...]
    global_ids: tuple[int, ...]
    graph: AttributedGraph
    snapshot: CsrSnapshot

    @property
    def replica_count(self) -> int:
        return len(self.global_ids) - len(self.home)


class ShardSet:
    """The materialized shards of one graph version, plus their lifecycle.

    Owns the per-shard local snapshots and (once :meth:`share` is
    called) the shared-memory copies process fleets attach to.  Release
    is deterministic and idempotent; the CI shm-leak check pins it.
    """

    def __init__(
        self,
        shards: list[Shard],
        shard_map: ShardMap,
        *,
        instruments: InstrumentRegistry = NULL_REGISTRY,
    ) -> None:
        self.shards = shards
        self.shard_map = shard_map
        self.instruments = instruments
        self._shared: Optional[list[CsrSnapshot]] = None
        self._released = False

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def radius(self) -> int:
        return self.shard_map.radius

    @property
    def replica_vertices(self) -> int:
        return sum(shard.replica_count for shard in self.shards)

    @property
    def snapshot_bytes(self) -> int:
        return sum(shard.snapshot.nbytes for shard in self.shards)

    def views(self) -> list["CsrGraphView"]:
        """Read-only views over the local (in-process) snapshots."""
        return [shard.snapshot.view() for shard in self.shards]

    def share(self) -> list[str]:
        """Publish every shard as a shared-memory segment; return names.

        Idempotent: repeat calls return the existing segment names.  The
        set owns the segments until :meth:`release`.
        """
        if self._released:
            raise ShardError("cannot share a released shard set")
        if self._shared is None:
            shared: list[CsrSnapshot] = []
            try:
                for shard in self.shards:
                    shared.append(shard.snapshot.share(instruments=self.instruments))
            except BaseException:
                for snapshot in shared:
                    snapshot.release(instruments=self.instruments)
                raise
            self._shared = shared
            _bump("segments", len(shared), self.instruments)
            _bump(
                "segment_bytes",
                sum(snapshot.nbytes for snapshot in shared),
                self.instruments,
            )
        return [snapshot.name for snapshot in self._shared]

    def release(self) -> None:
        """Unlink shared segments and close local snapshots (idempotent).

        Callers must drain any attached worker pools first — the same
        shutdown-before-unlink order :mod:`repro.core.parallel` uses.
        """
        if self._released:
            return
        self._released = True
        if self._shared is not None:
            for snapshot in self._shared:
                snapshot.release(instruments=self.instruments)
            _bump("segment_releases", len(self._shared), self.instruments)
            self._shared = None
        for shard in self.shards:
            shard.snapshot.close()

    def __enter__(self) -> "ShardSet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return (
            f"ShardSet(shards={self.num_shards}, radius={self.radius}, "
            f"replicas={self.replica_vertices}, bytes={self.snapshot_bytes})"
        )


def build_shard_set(
    graph: AttributedGraph,
    num_shards: int,
    *,
    radius: int = DEFAULT_SHARD_RADIUS,
    max_rounds: int = MAX_LABEL_ROUNDS,
    instruments: InstrumentRegistry = NULL_REGISTRY,
) -> ShardSet:
    """Partition *graph* and materialize one CSR snapshot per shard.

    Each shard is the induced subgraph on ``home ∪ ball(home, radius)``
    built via :meth:`AttributedGraph.subgraph`, which shares the parent
    keyword table (global keyword ids flow into the snapshot masks).
    """
    if radius < 1:
        raise ShardError(
            f"replication radius must be >= 1 (edge coverage), got {radius}"
        )
    if not isinstance(graph, AttributedGraph):
        raise ShardError("sharding requires a mutable AttributedGraph, not a frozen view")
    if graph.num_vertices == 0:
        raise ShardError("cannot shard an empty graph")
    homes = partition_vertices(graph, num_shards, max_rounds=max_rounds)
    shards: list[Shard] = []
    home_of = [0] * graph.num_vertices
    home_local = [0] * graph.num_vertices
    global_ids_per_shard: list[tuple[int, ...]] = []
    for index, home in enumerate(homes):
        shard_vertices = sorted(_ball(graph, home, radius))
        local_of = {vertex: i for i, vertex in enumerate(shard_vertices)}
        for vertex in home:
            home_of[vertex] = index
            home_local[vertex] = local_of[vertex]
        subgraph = graph.subgraph(shard_vertices)
        snapshot = CsrSnapshot.from_graph(subgraph, instruments=instruments)
        shards.append(
            Shard(
                index=index,
                home=tuple(home),
                global_ids=tuple(shard_vertices),
                graph=subgraph,
                snapshot=snapshot,
            )
        )
        global_ids_per_shard.append(tuple(shard_vertices))
    shard_map = ShardMap(
        num_vertices=graph.num_vertices,
        radius=radius,
        parent_version=graph.version,
        home_of=tuple(home_of),
        home_local=tuple(home_local),
        shard_global_ids=tuple(global_ids_per_shard),
    )
    shard_set = ShardSet(shards, shard_map, instruments=instruments)
    _bump("partitions", 1, instruments)
    _bump("replica_vertices", shard_set.replica_vertices, instruments)
    return shard_set
