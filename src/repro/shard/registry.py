"""Multi-graph registry: many named graphs, each with its own service.

One process can now serve several tenants: each registered graph gets
its own :class:`~repro.service.QueryService` (own result cache, own
solver engines, own epoch manager when mutable) and a **stable
``graph_id``** of the form ``"{name}#{generation}"``.  The generation
counter bumps every time a name is (re)loaded, so a dropped-and-
reloaded tenant can never be served another incarnation's cached
groups even though both graphs start at ``version == 0`` — the
cross-tenant collision the ``graph_id`` cache keys exist to prevent.

The registry is thread-safe: the HTTP server loads and drops graphs
from solver-pool threads while the event loop routes solves.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.errors import ShardError, UnknownGraphError
from repro.core.graph import AttributedGraph
from repro.obs.instruments import NULL_REGISTRY, InstrumentRegistry

__all__ = ["GraphRegistry", "RegisteredGraph"]


@dataclass
class RegisteredGraph:
    """One registry entry: the graph, its service, and its provenance."""

    name: str
    profile: Optional[str]
    scale: float
    seed: Optional[int]
    generation: int
    graph: AttributedGraph
    service: "object"  # QueryService; typed loosely to avoid an import cycle

    @property
    def graph_id(self) -> str:
        return f"{self.name}#{self.generation}"

    def describe(self) -> dict:
        """JSON-shaped summary (the ``GET /graphs`` payload row)."""
        return {
            "name": self.name,
            "graph_id": self.graph_id,
            "profile": self.profile,
            "scale": self.scale,
            "seed": self.seed,
            "generation": self.generation,
            "vertices": self.graph.num_vertices,
            "edges": self.graph.num_edges,
            "version": self.graph.version,
            "algorithm": self.service.spec.name,  # type: ignore[attr-defined]
        }


class GraphRegistry:
    """Name -> (graph, :class:`~repro.service.QueryService`) with lifecycle.

    *service_defaults* are forwarded to every service constructed by
    :meth:`load` (per-load overrides win).  Dropping or reloading a name
    closes the old service — draining its pools and releasing any
    shared-memory segments — before the name is reused.
    """

    def __init__(
        self,
        *,
        instruments: InstrumentRegistry = NULL_REGISTRY,
        **service_defaults: object,
    ) -> None:
        self.instruments = instruments
        self._defaults = dict(service_defaults)
        self._entries: dict[str, RegisteredGraph] = {}
        self._generations: dict[str, int] = {}
        self._lock = threading.Lock()
        self._loaded_counter = instruments.counter("shard.graphs_loaded")
        self._dropped_counter = instruments.counter("shard.graphs_dropped")

    # ------------------------------------------------------------------
    def load(
        self,
        name: str,
        profile: Optional[str] = None,
        *,
        scale: float = 1.0,
        seed: Optional[int] = None,
        graph: Optional[AttributedGraph] = None,
        **service_overrides: object,
    ) -> RegisteredGraph:
        """Register *name*, instantiating from a dataset profile or a graph.

        Reloading an existing name replaces it atomically (new
        generation, fresh service) and closes the old service after the
        swap.
        """
        if not name:
            raise ShardError("a registered graph needs a non-empty name")
        if graph is None:
            if profile is None:
                raise ShardError(
                    f"load({name!r}) needs a dataset profile or an explicit graph"
                )
            from repro.datasets.registry import load_dataset

            graph, _ = load_dataset(profile, scale=scale, seed=seed)
        from repro.service import QueryService

        settings = dict(self._defaults)
        settings.update(service_overrides)
        settings.setdefault("instruments", self.instruments)
        with self._lock:
            generation = self._generations.get(name, 0) + 1
            self._generations[name] = generation
            entry = RegisteredGraph(
                name=name,
                profile=profile,
                scale=scale,
                seed=seed,
                generation=generation,
                graph=graph,
                service=QueryService(
                    graph, graph_id=f"{name}#{generation}", **settings
                ),
            )
            previous = self._entries.get(name)
            self._entries[name] = entry
        if previous is not None:
            previous.service.close()  # type: ignore[attr-defined]
        self._loaded_counter.inc(1)
        return entry

    def get(self, name: str) -> "object":
        """The :class:`~repro.service.QueryService` serving *name*."""
        return self.entry(name).service

    def entry(self, name: str) -> RegisteredGraph:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise UnknownGraphError(name)
        return entry

    def drop(self, name: str) -> None:
        """Unregister *name* and close its service (pools, segments)."""
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            raise UnknownGraphError(name)
        entry.service.close()  # type: ignore[attr-defined]
        self._dropped_counter.inc(1)

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def describe(self) -> list[dict]:
        with self._lock:
            entries = [self._entries[name] for name in sorted(self._entries)]
        return [entry.describe() for entry in entries]

    def close(self) -> None:
        """Drop every graph (idempotent)."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            entry.service.close()  # type: ignore[attr-defined]
        self._dropped_counter.inc(len(entries))

    def __enter__(self) -> "GraphRegistry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:
        return f"GraphRegistry(graphs={self.names()})"
