"""repro — Keyword-based Socially Tenuous Group (KTG) queries.

A production-quality reproduction of *"Keyword-based Socially Tenuous
Group Queries"* (Zhu et al., ICDE 2023).  The library finds top-N groups
of ``p`` members in an attributed social network such that every pair of
members is socially distant (hop distance > ``k``) while the group
jointly covers as many query keywords as possible.

Quickstart
----------
>>> from repro import AttributedGraph, KTGQuery, BranchAndBoundSolver
>>> graph = AttributedGraph(
...     5,
...     edges=[(0, 1), (1, 2), (3, 4)],
...     keywords={0: ["db"], 2: ["ml"], 3: ["db", "ml"], 4: ["ir"]},
... )
>>> solver = BranchAndBoundSolver(graph)
>>> result = solver.solve(KTGQuery(keywords=("db", "ml", "ir"), group_size=2, tenuity=1, top_n=1))
>>> result.groups[0].coverage
1.0

Package layout
--------------
``repro.core``
    Problem model and exact algorithms (KTG-VKC, KTG-VKC-DEG,
    brute force, DKTG-Greedy).
``repro.index``
    Distance-check oracles: BFS, NL, NLRNL (Section V).
``repro.baselines``
    The TAGQ comparator used by the case study.
``repro.datasets``
    Synthetic social-network generation calibrated to the paper's
    datasets, plus edge-list/keyword file I/O.
``repro.workloads``
    Query workload generation and the experiment harness.
``repro.analysis``
    Result aggregation, table rendering, case-study tooling.
"""

from repro.core import (
    AttributedGraph,
    BranchAndBoundSolver,
    BruteForceSolver,
    CoverageContext,
    DKTGGreedySolver,
    DKTGQuery,
    DKTGResult,
    Group,
    KeywordTable,
    KTGQuery,
    KTGResult,
    QueryValidationError,
    ReproError,
    SearchStats,
    TopNPool,
    make_solver,
)
from repro.index import BFSOracle, DistanceOracle, NLIndex, NLRNLIndex

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AttributedGraph",
    "KeywordTable",
    "CoverageContext",
    "KTGQuery",
    "DKTGQuery",
    "Group",
    "TopNPool",
    "KTGResult",
    "DKTGResult",
    "SearchStats",
    "BranchAndBoundSolver",
    "BruteForceSolver",
    "DKTGGreedySolver",
    "make_solver",
    "DistanceOracle",
    "BFSOracle",
    "NLIndex",
    "NLRNLIndex",
    "ReproError",
    "QueryValidationError",
]
